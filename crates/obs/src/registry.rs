//! Metrics registry: monotonic counters, gauges with high-water marks,
//! and fixed-bucket histograms.
//!
//! All instruments are lock-free atomics, so one registry can be shared
//! by every replication worker of a run; registration (name lookup)
//! takes a mutex but is expected only at run setup, never per cycle.
//! Snapshots are deterministic: names are kept in a sorted map.

use crate::json::JsonObject;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-written-value gauge that also tracks its high-water mark.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
    high: AtomicU64,
}

impl Gauge {
    /// Records a new value (and raises the high-water mark if exceeded).
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
        self.high.fetch_max(v, Ordering::Relaxed);
    }

    /// Last recorded value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Largest value ever recorded.
    pub fn high_water(&self) -> u64 {
        self.high.load(Ordering::Relaxed)
    }
}

/// A histogram over fixed, caller-supplied bucket upper bounds.
///
/// `bounds[i]` is the *inclusive* upper edge of bucket `i`; one final
/// overflow bucket catches everything larger. Count and sum are kept so
/// snapshots can report the mean without reconstructing it.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

/// Default occupancy/latency bucket edges: 0, 1, 2, 4, … 4096.
pub const POW2_BOUNDS: &[u64] = &[0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096];

impl Histogram {
    /// Creates a histogram with the given inclusive bucket upper bounds
    /// (must be strictly increasing and non-empty).
    pub fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean observation. **Empty-state contract:** a zero-count
    /// histogram reports a mean of exactly `0.0` — never NaN — so
    /// downstream JSON and assertions stay well-defined before the
    /// first `record`.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Per-bucket counts, overflow bucket last.
    ///
    /// Under concurrent `record` calls, each returned bucket is a
    /// point-in-time atomic read; the per-bucket counts, `count()`,
    /// and `sum()` each individually never lose an increment, and once
    /// recording quiesces `bucket_counts().sum() == count()` exactly
    /// (see the `concurrent_records_stay_consistent` test).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Bucket upper bounds (the overflow bucket has none).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Observations larger than the last bound — the contents of the
    /// final overflow bucket, surfaced explicitly so out-of-range
    /// observations are visible instead of silently pooling at the
    /// tail. Snapshots (JSON and the Prometheus exposition) report it
    /// as its own field.
    pub fn overflow_count(&self) -> u64 {
        self.buckets[self.bounds.len()].load(Ordering::Relaxed)
    }

    /// Folds another histogram's contents into this one. Both must
    /// share identical bucket bounds. Used to aggregate worker-local
    /// histograms into a shared registry once per run, so hot loops
    /// record into unshared memory instead of contending on registry
    /// atomics.
    ///
    /// # Panics
    /// Panics if the bucket bounds differ.
    pub fn merge(&self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different bucket bounds"
        );
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.count.fetch_add(other.count(), Ordering::Relaxed);
        self.sum.fetch_add(other.sum(), Ordering::Relaxed);
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A point-in-time copy of one instrument, used by renderers (the
/// JSON snapshot and the Prometheus exposition) that must not hold the
/// registry lock while formatting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricSnapshot {
    /// Counter value.
    Counter(u64),
    /// Gauge value and high-water mark.
    Gauge {
        /// Last recorded value.
        value: u64,
        /// Largest value ever recorded.
        high: u64,
    },
    /// Histogram contents.
    Histogram {
        /// Inclusive bucket upper bounds (overflow bucket excluded).
        bounds: Vec<u64>,
        /// Per-bucket counts, overflow bucket last
        /// (`buckets.len() == bounds.len() + 1`).
        buckets: Vec<u64>,
        /// Total observations.
        count: u64,
        /// Sum of observed values.
        sum: u64,
        /// Observations above the last bound (equals `buckets.last()`).
        overflow: u64,
    },
}

/// A named collection of instruments. Cheap to construct; instruments
/// are created on first use and shared thereafter.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Returns the counter `name`, creating it if absent.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut m = self.metrics.lock().expect("registry poisoned");
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric '{name}' already registered with a different kind"),
        }
    }

    /// Returns the gauge `name`, creating it if absent.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut m = self.metrics.lock().expect("registry poisoned");
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric '{name}' already registered with a different kind"),
        }
    }

    /// Returns the histogram `name`, creating it with `bounds` if
    /// absent (the bounds of an existing histogram are kept).
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different kind.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Arc<Histogram> {
        let mut m = self.metrics.lock().expect("registry poisoned");
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new(bounds))))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric '{name}' already registered with a different kind"),
        }
    }

    /// Value of a counter, if registered (test/assertion helper).
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        let m = self.metrics.lock().expect("registry poisoned");
        match m.get(name) {
            Some(Metric::Counter(c)) => Some(c.get()),
            _ => None,
        }
    }

    /// True if no instrument has been registered.
    pub fn is_empty(&self) -> bool {
        self.metrics.lock().expect("registry poisoned").is_empty()
    }

    /// A typed point-in-time snapshot of every instrument, names
    /// sorted. The registry lock is held only for the copy, never
    /// while a caller formats.
    pub fn snapshot(&self) -> Vec<(String, MetricSnapshot)> {
        let m = self.metrics.lock().expect("registry poisoned");
        m.iter()
            .map(|(name, metric)| {
                let snap = match metric {
                    Metric::Counter(c) => MetricSnapshot::Counter(c.get()),
                    Metric::Gauge(g) => MetricSnapshot::Gauge {
                        value: g.get(),
                        high: g.high_water(),
                    },
                    Metric::Histogram(h) => MetricSnapshot::Histogram {
                        bounds: h.bounds().to_vec(),
                        buckets: h.bucket_counts(),
                        count: h.count(),
                        sum: h.sum(),
                        overflow: h.overflow_count(),
                    },
                };
                (name.clone(), snap)
            })
            .collect()
    }

    /// Serializes every instrument, grouped by kind, names sorted:
    /// `{"counters": {..}, "gauges": {..}, "histograms": {..}}`.
    pub fn snapshot_json(&self) -> String {
        let m = self.metrics.lock().expect("registry poisoned");
        let mut counters = JsonObject::new();
        let mut gauges = JsonObject::new();
        let mut histograms = JsonObject::new();
        for (name, metric) in m.iter() {
            match metric {
                Metric::Counter(c) => {
                    counters.field_u64(name, c.get());
                }
                Metric::Gauge(g) => {
                    let mut o = JsonObject::new();
                    o.field_u64("value", g.get()).field_u64("high", g.high_water());
                    gauges.field_raw(name, &o.finish());
                }
                Metric::Histogram(h) => {
                    let mut o = JsonObject::new();
                    let bounds: Vec<String> =
                        h.bounds().iter().map(|b| b.to_string()).collect();
                    let counts: Vec<String> =
                        h.bucket_counts().iter().map(|c| c.to_string()).collect();
                    o.field_u64("count", h.count())
                        .field_u64("sum", h.sum())
                        .field_u64("overflow", h.overflow_count())
                        .field_raw("le", &format!("[{}]", bounds.join(", ")))
                        .field_raw("buckets", &format!("[{}]", counts.join(", ")));
                    histograms.field_raw(name, &o.finish());
                }
            }
        }
        let mut out = JsonObject::new();
        out.field_raw("counters", &counters.finish())
            .field_raw("gauges", &gauges.finish())
            .field_raw("histograms", &histograms.finish());
        out.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_is_shared() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.add(4);
        assert_eq!(r.counter_value("x"), Some(5));
    }

    #[test]
    fn gauge_tracks_high_water() {
        let g = Gauge::default();
        g.set(3);
        g.set(10);
        g.set(2);
        assert_eq!(g.get(), 2);
        assert_eq!(g.high_water(), 10);
    }

    #[test]
    fn histogram_buckets_are_inclusive_upper_bounds() {
        let h = Histogram::new(&[0, 1, 4]);
        for v in [0, 1, 2, 4, 5, 1000] {
            h.record(v);
        }
        // buckets: <=0, <=1, <=4, overflow
        assert_eq!(h.bucket_counts(), vec![1, 1, 2, 2]);
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1012);
    }

    #[test]
    fn empty_histogram_reports_zero_mean_not_nan() {
        let h = Histogram::new(POW2_BOUNDS);
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.mean(), 0.0, "empty mean must be the documented 0.0");
        assert!(!h.mean().is_nan());
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), 0);
    }

    #[test]
    fn overflow_count_is_explicit_in_api_and_json() {
        let h = Histogram::new(&[0, 1, 4]);
        assert_eq!(h.overflow_count(), 0);
        for v in [0, 4, 5, 1000, u64::MAX / 2] {
            h.record(v);
        }
        // 5, 1000, and u64::MAX/2 exceed the last bound.
        assert_eq!(h.overflow_count(), 3);
        assert_eq!(h.overflow_count(), *h.bucket_counts().last().unwrap());

        let r = Registry::new();
        let rh = r.histogram("h", &[0, 1, 4]);
        rh.record(9);
        let s = r.snapshot_json();
        assert!(s.contains("\"overflow\": 1"), "{s}");
        match &r.snapshot()[0].1 {
            MetricSnapshot::Histogram { overflow, buckets, .. } => {
                assert_eq!(*overflow, 1);
                assert_eq!(buckets.last(), Some(&1));
            }
            other => panic!("expected histogram snapshot, got {other:?}"),
        }
    }

    #[test]
    fn overflow_survives_merge() {
        let a = Histogram::new(&[0, 1]);
        let b = Histogram::new(&[0, 1]);
        a.record(100);
        b.record(7);
        b.record(0);
        a.merge(&b);
        assert_eq!(a.overflow_count(), 2);
    }

    #[test]
    fn concurrent_records_stay_consistent() {
        // Satellite regression: bucket_counts()/count()/sum() must not
        // lose increments under concurrent record(); after the writers
        // join, all three views agree exactly.
        let h = std::sync::Arc::new(Histogram::new(&[0, 1, 4]));
        let threads = 4;
        let per_thread = 10_000u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let h = std::sync::Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..per_thread {
                        h.record((i + t) % 7);
                    }
                });
            }
        });
        let total = threads * per_thread;
        assert_eq!(h.count(), total);
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), total);
        let expected_sum: u64 =
            (0..threads).map(|t| (0..per_thread).map(|i| (i + t) % 7).sum::<u64>()).sum();
        assert_eq!(h.sum(), expected_sum);
    }

    #[test]
    fn merge_adds_buckets_count_and_sum() {
        let a = Histogram::new(&[0, 1, 4]);
        let b = Histogram::new(&[0, 1, 4]);
        for v in [0, 2, 9] {
            a.record(v);
        }
        for v in [1, 1, 4, 100] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 7);
        assert_eq!(a.sum(), 117);
        assert_eq!(a.bucket_counts(), vec![1, 2, 2, 2]);
        // b is untouched.
        assert_eq!(b.count(), 4);
    }

    #[test]
    #[should_panic(expected = "different bucket bounds")]
    fn merge_rejects_mismatched_bounds() {
        let a = Histogram::new(&[0, 1]);
        let b = Histogram::new(&[0, 2]);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_conflict_panics() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn snapshot_is_sorted_and_balanced() {
        let r = Registry::new();
        r.counter("b.count").add(2);
        r.gauge("a.gauge").set(7);
        r.histogram("c.hist", POW2_BOUNDS).record(3);
        let s = r.snapshot_json();
        assert!(s.contains("\"b.count\": 2"));
        assert!(s.contains("\"high\": 7"));
        assert!(s.contains("\"c.hist\""));
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('[').count(), s.matches(']').count());
    }
}
