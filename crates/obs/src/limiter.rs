//! A lock-free minimum-interval rate limiter.
//!
//! Shared by the stderr [`Heartbeat`](crate::Heartbeat) and the serve
//! access-log sampler: both need "at most one event per interval"
//! gating that never blocks the caller. The limiter is a single atomic
//! compare-exchange over nanoseconds-since-construction, so it is safe
//! to call from every worker thread on a hot path.
//!
//! Two constructions differ only in how they treat the very first
//! event:
//!
//! * [`RateLimiter::new`] — the **first event is always allowed**
//!   (an access log that never writes its first line is useless);
//!   subsequent events within `min_interval` of the last allowed one
//!   are suppressed.
//! * [`RateLimiter::primed`] — behaves as if an event had fired at
//!   construction, so the first `min_interval` is silent. This is the
//!   heartbeat's contract: a progress line at t=0 would carry no
//!   information.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Sentinel for "no event allowed yet" (see [`RateLimiter::new`]).
const NEVER: u64 = u64::MAX;

/// A thread-safe "at most one event per `min_interval`" gate.
#[derive(Debug)]
pub struct RateLimiter {
    min_interval: Duration,
    start: Instant,
    /// Nanoseconds since `start` of the last allowed event, or
    /// [`NEVER`]. Updated by compare-exchange so exactly one racing
    /// caller wins each interval.
    last_nanos: AtomicU64,
    allowed: AtomicU64,
    suppressed: AtomicU64,
}

impl RateLimiter {
    /// A limiter whose **first** [`allow`](Self::allow) always returns
    /// `true`, with at most one further event per `min_interval`.
    pub fn new(min_interval: Duration) -> Self {
        RateLimiter {
            min_interval,
            start: Instant::now(),
            last_nanos: AtomicU64::new(NEVER),
            allowed: AtomicU64::new(0),
            suppressed: AtomicU64::new(0),
        }
    }

    /// A limiter that acts as if an event fired at construction: the
    /// first `min_interval` suppresses everything.
    pub fn primed(min_interval: Duration) -> Self {
        let limiter = RateLimiter::new(min_interval);
        limiter.last_nanos.store(0, Ordering::Relaxed);
        limiter
    }

    /// True if an event may fire now; claims the slot on success.
    /// Contending callers race on a compare-exchange — exactly one
    /// wins per interval, the rest are suppressed without blocking.
    pub fn allow(&self) -> bool {
        self.allow_at(self.start.elapsed())
    }

    /// [`allow`](Self::allow) with an explicit elapsed-time clock
    /// (tests drive interval edges deterministically through this).
    pub fn allow_at(&self, since_start: Duration) -> bool {
        let now = since_start.as_nanos().min(u128::from(NEVER - 1)) as u64;
        let interval = self.min_interval.as_nanos().min(u128::from(NEVER)) as u64;
        let mut cur = self.last_nanos.load(Ordering::Relaxed);
        loop {
            if cur != NEVER && now.saturating_sub(cur) < interval {
                self.suppressed.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            match self.last_nanos.compare_exchange_weak(
                cur,
                now,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.allowed.fetch_add(1, Ordering::Relaxed);
                    return true;
                }
                // Another caller claimed the slot (or a spurious
                // failure); re-examine the fresh value.
                Err(fresh) => cur = fresh,
            }
        }
    }

    /// Events that passed the gate so far.
    pub fn allowed_count(&self) -> u64 {
        self.allowed.load(Ordering::Relaxed)
    }

    /// Events the gate suppressed so far.
    pub fn suppressed_count(&self) -> u64 {
        self.suppressed.load(Ordering::Relaxed)
    }

    /// The configured minimum interval.
    pub fn min_interval(&self) -> Duration {
        self.min_interval
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_event_is_always_emitted() {
        let l = RateLimiter::new(Duration::from_secs(3600));
        assert!(l.allow(), "first event must pass even inside the interval");
        assert!(!l.allow(), "second event within the interval is suppressed");
        assert_eq!(l.allowed_count(), 1);
        assert_eq!(l.suppressed_count(), 1);
    }

    #[test]
    fn primed_limiter_suppresses_the_first_interval() {
        let l = RateLimiter::primed(Duration::from_secs(3600));
        assert!(!l.allow(), "primed: construction counts as the last event");
        assert_eq!(l.allowed_count(), 0);
    }

    #[test]
    fn bursts_collapse_to_one_event_per_interval() {
        let l = RateLimiter::new(Duration::from_millis(100));
        assert!(l.allow_at(Duration::from_millis(0)));
        for ms in [1, 5, 50, 99] {
            assert!(!l.allow_at(Duration::from_millis(ms)), "t={ms}ms");
        }
        assert!(l.allow_at(Duration::from_millis(100)), "interval edge re-opens");
        assert!(!l.allow_at(Duration::from_millis(199)));
        assert!(l.allow_at(Duration::from_millis(205)));
        assert_eq!(l.allowed_count(), 3);
        assert_eq!(l.suppressed_count(), 5);
    }

    #[test]
    fn zero_interval_allows_everything() {
        let l = RateLimiter::primed(Duration::ZERO);
        for _ in 0..5 {
            assert!(l.allow());
        }
        assert_eq!(l.allowed_count(), 5);
        assert_eq!(l.suppressed_count(), 0);
    }

    #[test]
    fn concurrent_burst_admits_exactly_one() {
        let l = std::sync::Arc::new(RateLimiter::new(Duration::from_secs(3600)));
        let admitted: u64 = std::thread::scope(|s| {
            (0..8)
                .map(|_| {
                    let l = std::sync::Arc::clone(&l);
                    s.spawn(move || u64::from(l.allow()))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert_eq!(admitted, 1, "exactly one racing caller wins the slot");
        assert_eq!(l.allowed_count(), 1);
        assert_eq!(l.suppressed_count(), 7);
    }
}
