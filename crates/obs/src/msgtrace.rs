//! Sampled per-message lifecycle tracing.
//!
//! The paper's whole subject is *where* a message's delay accrues —
//! per-stage waiting laws composing into the end-to-end distribution —
//! and this module captures that provenance at message granularity: a
//! deterministic sample of tracked messages, each with its injection
//! cycle, per-stage routing digit, and per-stage wait. Queue-entry /
//! service-start / departure cycles are *derived*, never stored: under
//! cut-through forwarding
//!
//! ```text
//! enter[0]   = inject
//! start[j]   = enter[j] + wait[j]
//! enter[j+1] = start[j] + 1
//! ```
//!
//! so a record is fully determined by `(inject, waits)` and the
//! monotone cycle chain holds by construction. One shared renderer
//! ([`render_jsonl`]) turns records into `banyan-obs/msgtrace/v1`
//! JSONL, which makes *byte-identical trace files* the cross-engine
//! correctness contract: the scalar, lock-step, and stage-sweep
//! simulators must produce the same integers for the same sampled
//! message.
//!
//! **Sampling determinism.** Whether a message is traced depends only
//! on its replication's base seed and its *tracked-injection ordinal*
//! (the 0-based count of tracked injections within the replication, in
//! cycle-then-port order — an ordering all three engines already agree
//! on). The decision is a pure [`sample_hash`] of `(seed, ordinal)`
//! against a rate threshold; it never consumes simulator RNG, so
//! tracing cannot perturb the dynamics, and the same message set is
//! selected regardless of thread count or engine.

use crate::json::{JsonObject, JsonValue};
use crate::span::SpanEvent;
use std::sync::Mutex;

/// Schema identifier of the JSONL trace format (first line, `kind:
/// "header"`; every following line is one `kind: "msg"` record).
pub const MSGTRACE_SCHEMA: &str = "banyan-obs/msgtrace/v1";

/// Mixes a replication seed and a message ordinal into a uniform
/// `u64` (the splitmix64 finalizer over `seed ^ ord·φ64`). Pure — the
/// sampling decision must never touch the simulator's RNG stream.
#[inline]
#[must_use]
pub fn sample_hash(seed: u64, ord: u64) -> u64 {
    let mut z = seed ^ ord.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One sampled message's lifecycle: which replication it belongs to,
/// its tracked-injection ordinal, injection cycle, per-stage routing
/// digits (empty when the workload has no digit routing, e.g. the flow
/// event simulator), and per-stage waits. All cycle timestamps are
/// derived (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MsgRecord {
    /// Replication index (0-based, global across threads).
    pub rep: u32,
    /// Tracked-injection ordinal within the replication.
    pub ord: u64,
    /// Cycle the message entered its first-stage queue.
    pub inject: u64,
    /// Routing digit consumed per stage (`digits[0]` selects the
    /// first-stage queue). Empty when routing digits do not apply.
    pub digits: Vec<u8>,
    /// Waiting time (cycles) in each stage's queue.
    pub waits: Vec<u32>,
}

/// Renders `[a, b, c]` from any display-able items.
fn array_json<T: std::fmt::Display>(items: impl Iterator<Item = T>) -> String {
    let parts: Vec<String> = items.map(|v| v.to_string()).collect();
    format!("[{}]", parts.join(", "))
}

impl MsgRecord {
    /// Queue-entry cycle per stage: `enter[0] = inject`,
    /// `enter[j+1] = start[j] + 1` (cut-through forwarding).
    #[must_use]
    pub fn enter_cycles(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.waits.len());
        let mut enter = self.inject;
        for &w in &self.waits {
            out.push(enter);
            enter += u64::from(w) + 1; // next stage entry = start + 1
        }
        out
    }

    /// Service-start cycle per stage: `start[j] = enter[j] + wait[j]`.
    #[must_use]
    pub fn start_cycles(&self) -> Vec<u64> {
        self.enter_cycles()
            .iter()
            .zip(&self.waits)
            .map(|(&e, &w)| e + u64::from(w))
            .collect()
    }

    /// End-to-end waiting time: the exact sum of per-stage waits.
    #[must_use]
    pub fn total_wait(&self) -> u64 {
        self.waits.iter().map(|&w| u64::from(w)).sum()
    }

    /// One `kind: "msg"` JSONL line (no trailing newline).
    #[must_use]
    pub fn render_line(&self) -> String {
        let enter = self.enter_cycles();
        let start = self.start_cycles();
        let mut o = JsonObject::new();
        o.field_str("kind", "msg")
            .field_u64("rep", u64::from(self.rep))
            .field_u64("ord", self.ord)
            .field_u64("inject", self.inject)
            .field_raw("digits", &array_json(self.digits.iter()))
            .field_raw("enter", &array_json(enter.iter()))
            .field_raw("start", &array_json(start.iter()))
            .field_raw("wait", &array_json(self.waits.iter()))
            .field_u64("total", self.total_wait());
        o.finish()
    }
}

/// Starts the `kind: "header"` object all traces open with. Callers
/// append workload-specific fields (`k`, `p`, `m`, …) and `finish()`
/// it into the first JSONL line.
#[must_use]
pub fn header_object(name: &str, stages: u32, seed: u64, reps: u32, rate: f64) -> JsonObject {
    let mut o = JsonObject::new();
    o.field_str("schema", MSGTRACE_SCHEMA)
        .field_str("kind", "header")
        .field_str("name", name)
        .field_u64("stages", u64::from(stages))
        .field_u64("seed", seed)
        .field_u64("reps", u64::from(reps))
        .field_f64("rate", rate);
    o
}

/// Renders a complete trace document: the header line followed by one
/// line per record, trailing newline included. This is the *only*
/// renderer — every engine's records pass through it, so byte equality
/// of two trace files reduces to integer equality of their records.
#[must_use]
pub fn render_jsonl(header_line: &str, records: &[MsgRecord]) -> String {
    let mut out = String::with_capacity(header_line.len() + records.len() * 96 + 1);
    out.push_str(header_line);
    out.push('\n');
    for r in records {
        out.push_str(&r.render_line());
        out.push('\n');
    }
    out
}

/// Converts records into `chrome://tracing` span events: each message
/// gets its own thread lane (`tid` = record index) holding one
/// enclosing `rep{r}/msg{ord}` span plus one `stage{j}` child span per
/// stage, with simulated cycles mapped 1:1 onto microseconds. Feed the
/// result to [`crate::trace::trace_json_from_events`].
#[must_use]
pub fn chrome_events(records: &[MsgRecord]) -> Vec<SpanEvent> {
    let mut events = Vec::with_capacity(records.len() * 4);
    for (i, r) in records.iter().enumerate() {
        let tid = i as u64;
        let enter = r.enter_cycles();
        let start = r.start_cycles();
        let depart = start.last().map_or(r.inject, |&s| s + 1);
        events.push(SpanEvent {
            name: format!("rep{}/msg{}", r.rep, r.ord),
            ts_us: r.inject,
            dur_us: depart - r.inject,
            tid,
        });
        for (j, (&e, &s)) in enter.iter().zip(&start).enumerate() {
            events.push(SpanEvent {
                name: format!("stage{:02}", j + 1),
                ts_us: e,
                dur_us: s + 1 - e,
                tid,
            });
        }
    }
    events
}

/// Per-replication recording surface. Engines obtain one via
/// [`MsgTracer::rep`], fill it while the replication runs, and
/// [`MsgTracer::commit`] it back; records are kept in begin order,
/// which every engine's inject scan makes ordinal order.
#[derive(Debug)]
pub struct RepTrace {
    rep: u32,
    seed: u64,
    all: bool,
    threshold: u64,
    records: Vec<MsgRecord>,
}

impl RepTrace {
    /// True when the message with this tracked-injection ordinal is in
    /// the sample. Pure; never consumes simulator RNG.
    #[inline]
    #[must_use]
    pub fn sampled(&self, ord: u64) -> bool {
        self.all || sample_hash(self.seed, ord) < self.threshold
    }

    /// Opens a record for a sampled message; returns its index for the
    /// later digit/wait fills.
    pub fn begin(&mut self, ord: u64, inject: u64) -> usize {
        self.records.push(MsgRecord {
            rep: self.rep,
            ord,
            inject,
            digits: Vec::new(),
            waits: Vec::new(),
        });
        self.records.len() - 1
    }

    /// Appends one routing digit (random-digit workloads discover
    /// digits hop by hop).
    #[inline]
    pub fn push_digit(&mut self, idx: usize, digit: u8) {
        self.records[idx].digits.push(digit);
    }

    /// Sets all routing digits from the destination's base-`k`
    /// expansion, MSB first — the digit order tag-routing consumes.
    pub fn set_digits_from_dest(&mut self, idx: usize, dest: u64, k: u64, stages: usize) {
        let d = &mut self.records[idx].digits;
        d.clear();
        d.resize(stages, 0);
        let mut rem = dest;
        for slot in d.iter_mut().rev() {
            *slot = (rem % k) as u8;
            rem /= k;
        }
    }

    /// Appends one per-stage wait (for engines that learn waits hop by
    /// hop, like the flow event simulator).
    #[inline]
    pub fn push_wait(&mut self, idx: usize, wait: u32) {
        self.records[idx].waits.push(wait);
    }

    /// Sets the full per-stage wait vector at delivery.
    pub fn set_waits(&mut self, idx: usize, waits: &[u32]) {
        let w = &mut self.records[idx].waits;
        w.clear();
        w.extend_from_slice(waits);
    }

    /// `(record index, ordinal)` of every opened record, in begin
    /// order — the stage-sweep engine walks this after its solve to
    /// fill waits from its ordinal-indexed wait matrix.
    #[must_use]
    pub fn entries(&self) -> Vec<(usize, u64)> {
        self.records
            .iter()
            .enumerate()
            .map(|(i, r)| (i, r.ord))
            .collect()
    }

    /// Number of records opened so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no record has been opened.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// The shared per-run trace sink: hands out [`RepTrace`]s keyed by
/// replication index and reassembles committed records in replication
/// order, so the final record list is independent of thread count and
/// worker scheduling.
#[derive(Debug)]
pub struct MsgTracer {
    rate: f64,
    all: bool,
    threshold: u64,
    slots: Mutex<Vec<Option<Vec<MsgRecord>>>>,
}

impl MsgTracer {
    /// Builds a tracer sampling each tracked message independently
    /// with probability `rate` (clamped to `[0, 1]`; `1.0` traces
    /// every tracked message).
    #[must_use]
    pub fn new(rate: f64) -> Self {
        let rate = if rate.is_finite() {
            rate.clamp(0.0, 1.0)
        } else {
            0.0
        };
        MsgTracer {
            rate,
            all: rate >= 1.0,
            // rate · 2^64, saturating; exact for the rates we pass.
            threshold: (rate * 18_446_744_073_709_551_616.0) as u64,
            slots: Mutex::new(Vec::new()),
        }
    }

    /// The sampling rate this tracer was built with.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// A fresh recording surface for replication `rep` seeded `seed`
    /// (the replication's own base seed, so the sample set is a pure
    /// function of the run configuration).
    #[must_use]
    pub fn rep(&self, rep: u32, seed: u64) -> RepTrace {
        RepTrace {
            rep,
            seed,
            all: self.all,
            threshold: self.threshold,
            records: Vec::new(),
        }
    }

    /// Files a completed replication's records under its index.
    pub fn commit(&self, rt: RepTrace) {
        let mut slots = self.slots.lock().expect("msgtrace slots poisoned");
        let idx = rt.rep as usize;
        if slots.len() <= idx {
            slots.resize_with(idx + 1, || None);
        }
        slots[idx] = Some(rt.records);
    }

    /// All committed records, flattened in replication order (within a
    /// replication, ordinal order). Thread count and commit order do
    /// not affect the result.
    #[must_use]
    pub fn finish(&self) -> Vec<MsgRecord> {
        let slots = self.slots.lock().expect("msgtrace slots poisoned");
        slots.iter().flatten().flatten().cloned().collect()
    }
}

/// A parsed-and-validated trace file: the header's identifying fields
/// plus every record. [`parse_trace`] enforces the format's internal
/// contracts, so holders of this struct can trust the records.
#[derive(Debug)]
pub struct ParsedTrace {
    /// The header's `name` (e.g. `banyan-simulate`).
    pub name: String,
    /// Stage count every record must match (`None` when the header
    /// declares `stages: 0`, the variable-hop flow format).
    pub stages: Option<u32>,
    /// Base seed of the run.
    pub seed: u64,
    /// Replication count of the run.
    pub reps: u32,
    /// Sampling rate of the run.
    pub rate: f64,
    /// The full parsed header object, for workload fields (`k`, `p`,
    /// `m`, …) the core schema does not mandate.
    pub header: JsonValue,
    /// Every record, in file order (validated: ascending `(rep, ord)`).
    pub records: Vec<MsgRecord>,
}

/// Reads a `u64` field of a record line.
fn rec_u64(doc: &JsonValue, key: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("{key} is not a nonnegative integer"))
}

/// Reads an integer array field of a record line.
fn rec_arr(doc: &JsonValue, key: &str) -> Result<Vec<u64>, String> {
    let arr = doc
        .get(key)
        .and_then(JsonValue::as_array)
        .ok_or_else(|| format!("{key} is not an array"))?;
    arr.iter()
        .enumerate()
        .map(|(i, v)| {
            v.as_u64()
                .ok_or_else(|| format!("{key}[{i}] is not a nonnegative integer"))
        })
        .collect()
}

/// Parses and validates a `banyan-obs/msgtrace/v1` document. Checks,
/// per record: parallel array lengths (equal to the header's stage
/// count when it is nonzero), the monotone cycle chain
/// `enter[j] ≤ start[j] < enter[j+1]` with `start = enter + wait` and
/// `enter[j+1] = start[j] + 1` exactly, the sum-of-stage-waits
/// identity `total = Σ wait[j]`, digits either absent or one per
/// stage, and file-wide strictly ascending `(rep, ord)` order.
pub fn parse_trace(text: &str) -> Result<ParsedTrace, String> {
    let mut lines = text.lines().enumerate().filter(|(_, l)| !l.is_empty());
    let (_, first) = lines.next().ok_or("trace file is empty")?;
    let header = JsonValue::parse(first).map_err(|e| format!("line 1: invalid JSON: {e}"))?;
    if header.get("schema").and_then(JsonValue::as_str) != Some(MSGTRACE_SCHEMA) {
        return Err(format!("line 1: schema is not \"{MSGTRACE_SCHEMA}\""));
    }
    if header.get("kind").and_then(JsonValue::as_str) != Some("header") {
        return Err("line 1: kind is not \"header\"".into());
    }
    let name = header
        .get("name")
        .and_then(JsonValue::as_str)
        .ok_or("line 1: name is not a string")?
        .to_string();
    let stages_raw = rec_u64(&header, "stages").map_err(|e| format!("line 1: {e}"))?;
    let stages = (stages_raw > 0).then_some(stages_raw as u32);
    let seed = rec_u64(&header, "seed").map_err(|e| format!("line 1: {e}"))?;
    let reps = rec_u64(&header, "reps").map_err(|e| format!("line 1: {e}"))? as u32;
    let rate = header
        .get("rate")
        .and_then(JsonValue::as_f64)
        .filter(|r| r.is_finite() && (0.0..=1.0).contains(r))
        .ok_or("line 1: rate is not a probability")?;
    let mut records = Vec::new();
    let mut last_key: Option<(u64, u64)> = None;
    for (i, line) in lines {
        let ctx = |msg: String| format!("line {}: {msg}", i + 1);
        let doc = JsonValue::parse(line).map_err(|e| ctx(format!("invalid JSON: {e}")))?;
        if doc.get("kind").and_then(JsonValue::as_str) != Some("msg") {
            return Err(ctx("kind is not \"msg\"".into()));
        }
        let rep = rec_u64(&doc, "rep").map_err(&ctx)?;
        let ord = rec_u64(&doc, "ord").map_err(&ctx)?;
        let inject = rec_u64(&doc, "inject").map_err(&ctx)?;
        let digits = rec_arr(&doc, "digits").map_err(&ctx)?;
        let enter = rec_arr(&doc, "enter").map_err(&ctx)?;
        let start = rec_arr(&doc, "start").map_err(&ctx)?;
        let wait = rec_arr(&doc, "wait").map_err(&ctx)?;
        let total = rec_u64(&doc, "total").map_err(&ctx)?;
        let n = wait.len();
        if n == 0 {
            return Err(ctx("record has no stages".into()));
        }
        if enter.len() != n || start.len() != n {
            return Err(ctx(format!(
                "array lengths disagree: enter {} start {} wait {n}",
                enter.len(),
                start.len()
            )));
        }
        if let Some(s) = stages {
            if n != s as usize {
                return Err(ctx(format!("record has {n} stages, header says {s}")));
            }
        }
        if !digits.is_empty() && digits.len() != n {
            return Err(ctx(format!(
                "digits length {} is neither 0 nor the stage count {n}",
                digits.len()
            )));
        }
        if let Some(d) = digits.iter().find(|&&d| d > u64::from(u8::MAX)) {
            return Err(ctx(format!("digit {d} out of range")));
        }
        if enter[0] != inject {
            return Err(ctx(format!(
                "enter[0] {} is not the inject cycle {inject}",
                enter[0]
            )));
        }
        // The monotone lifecycle chain, exactly as derived.
        for j in 0..n {
            if start[j] != enter[j] + wait[j] {
                return Err(ctx(format!(
                    "start[{j}] {} != enter[{j}] {} + wait[{j}] {}",
                    start[j], enter[j], wait[j]
                )));
            }
            if j + 1 < n && enter[j + 1] != start[j] + 1 {
                return Err(ctx(format!(
                    "enter[{}] {} != start[{j}] {} + 1 (cut-through)",
                    j + 1,
                    enter[j + 1],
                    start[j]
                )));
            }
        }
        if wait.iter().sum::<u64>() != total {
            return Err(ctx(format!(
                "total {total} != sum of stage waits {}",
                wait.iter().sum::<u64>()
            )));
        }
        let key = (rep, ord);
        if last_key.is_some_and(|prev| prev >= key) {
            return Err(ctx(format!(
                "records out of order: (rep {rep}, ord {ord}) after {last_key:?}"
            )));
        }
        last_key = Some(key);
        if rep >= u64::from(reps) {
            return Err(ctx(format!("rep {rep} >= header reps {reps}")));
        }
        records.push(MsgRecord {
            rep: rep as u32,
            ord,
            inject,
            digits: digits.iter().map(|&d| d as u8).collect(),
            waits: wait.iter().map(|&w| w as u32).collect(),
        });
    }
    Ok(ParsedTrace {
        name,
        stages,
        seed,
        reps,
        rate,
        header,
        records,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(rep: u32, ord: u64, inject: u64, waits: &[u32]) -> MsgRecord {
        MsgRecord {
            rep,
            ord,
            inject,
            digits: vec![0; waits.len()],
            waits: waits.to_vec(),
        }
    }

    #[test]
    fn derived_cycles_follow_cut_through_chain() {
        let r = rec(0, 7, 100, &[2, 0, 5]);
        assert_eq!(r.enter_cycles(), vec![100, 103, 104]);
        assert_eq!(r.start_cycles(), vec![102, 103, 109]);
        assert_eq!(r.total_wait(), 7);
    }

    #[test]
    fn sampling_is_deterministic_and_roughly_calibrated() {
        let tracer = MsgTracer::new(0.25);
        let rt = tracer.rep(0, 0xDEAD_BEEF);
        let hits = (0..10_000u64).filter(|&o| rt.sampled(o)).count();
        // Binomial(10000, 0.25): ±5σ ≈ ±217.
        assert!((2_283..=2_717).contains(&hits), "hits {hits}");
        let rt2 = tracer.rep(0, 0xDEAD_BEEF);
        for o in 0..1_000 {
            assert_eq!(rt.sampled(o), rt2.sampled(o));
        }
        assert!(MsgTracer::new(1.0).rep(0, 1).sampled(12345));
        assert!(!MsgTracer::new(0.0).rep(0, 1).sampled(12345));
    }

    #[test]
    fn tracer_reassembles_commits_in_rep_order() {
        let tracer = MsgTracer::new(1.0);
        let mut late = tracer.rep(1, 2);
        late.begin(0, 50);
        late.set_waits(0, &[1]);
        let mut early = tracer.rep(0, 1);
        early.begin(3, 10);
        early.set_waits(0, &[0]);
        tracer.commit(late);
        tracer.commit(early);
        let records = tracer.finish();
        assert_eq!(records.len(), 2);
        assert_eq!((records[0].rep, records[0].ord), (0, 3));
        assert_eq!((records[1].rep, records[1].ord), (1, 0));
    }

    #[test]
    fn digits_from_dest_are_msb_first() {
        let tracer = MsgTracer::new(1.0);
        let mut rt = tracer.rep(0, 1);
        let idx = rt.begin(0, 0);
        rt.set_digits_from_dest(idx, 6, 2, 3); // 6 = 110₂
        assert_eq!(rt.records[idx].digits, vec![1, 1, 0]);
        rt.set_digits_from_dest(idx, 11, 4, 2); // 11 = 23₄
        assert_eq!(rt.records[idx].digits, vec![2, 3]);
    }

    #[test]
    fn rendered_trace_round_trips_through_parser() {
        let records = vec![rec(0, 2, 100, &[1, 0]), rec(1, 0, 501, &[0, 3])];
        let mut h = header_object("banyan-simulate", 2, 42, 2, 0.5);
        h.field_u64("k", 2);
        let doc = render_jsonl(&h.finish(), &records);
        let parsed = parse_trace(&doc).expect("parse");
        assert_eq!(parsed.name, "banyan-simulate");
        assert_eq!(parsed.stages, Some(2));
        assert_eq!((parsed.seed, parsed.reps), (42, 2));
        assert_eq!(parsed.records, records);
        assert_eq!(parsed.header.get("k").and_then(JsonValue::as_u64), Some(2));
    }

    #[test]
    fn parser_rejects_broken_contracts() {
        let h = header_object("t", 1, 1, 1, 1.0).finish();
        let good = rec(0, 0, 5, &[2]).render_line();
        assert!(parse_trace(&render_jsonl(&h, &[])).is_ok());
        // Sum identity broken.
        let bad_total = good.replace("\"total\": 2", "\"total\": 3");
        assert!(parse_trace(&format!("{h}\n{bad_total}\n")).is_err());
        // Chain broken.
        let bad_start = good.replace("\"start\": [7]", "\"start\": [8]");
        assert!(parse_trace(&format!("{h}\n{bad_start}\n")).is_err());
        // Stage count disagrees with the header.
        let two = rec(0, 1, 5, &[1, 1]).render_line();
        assert!(parse_trace(&format!("{h}\n{two}\n")).is_err());
        // Out of order.
        let a = rec(0, 3, 5, &[1]).render_line();
        let b = rec(0, 1, 6, &[1]).render_line();
        assert!(parse_trace(&format!("{h}\n{a}\n{b}\n")).is_err());
        // Ordered is fine.
        assert!(parse_trace(&format!("{h}\n{b}\n{a}\n")).is_ok());
    }

    #[test]
    fn chrome_events_nest_stages_inside_message_span() {
        let events = chrome_events(&[rec(0, 1, 10, &[3, 1])]);
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].name, "rep0/msg1");
        assert_eq!((events[0].ts_us, events[0].dur_us), (10, 6)); // departs 16
        assert_eq!((events[1].ts_us, events[1].dur_us), (10, 4)); // stage 1
        assert_eq!((events[2].ts_us, events[2].dur_us), (14, 2)); // stage 2
        assert!(events.iter().all(|e| e.tid == 0));
    }
}
