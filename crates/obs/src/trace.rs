//! `chrome://tracing`-compatible trace-event export.
//!
//! Serializes the completed [`SpanEvent`]s of a [`SpanSet`] in the
//! Trace Event Format's JSON object form:
//!
//! ```json
//! {"traceEvents": [
//!   {"ph": "X", "name": "net/measure", "ts": 120, "dur": 4500,
//!    "pid": 1, "tid": 0, "cat": "banyan"}
//! ]}
//! ```
//!
//! `ph: "X"` is a *complete* event (start + duration in one record);
//! `ts`/`dur` are microseconds, as the format requires. The output
//! loads directly in Perfetto or `chrome://tracing`.

use crate::json::{escape, JsonObject};
use crate::span::{SpanEvent, SpanSet};

/// Fixed pid: the exporter covers a single process.
const TRACE_PID: u64 = 1;

/// Render one complete ("X") trace event.
fn event_json(ev: &SpanEvent) -> String {
    let mut o = JsonObject::new();
    o.field_str("ph", "X")
        .field_str("name", &ev.name)
        .field_str("cat", "banyan")
        .field_u64("ts", ev.ts_us)
        .field_u64("dur", ev.dur_us)
        .field_u64("pid", TRACE_PID)
        .field_u64("tid", ev.tid);
    o.finish()
}

/// Render a full trace document from explicit events.
pub fn trace_json_from_events(events: &[SpanEvent]) -> String {
    let mut parts = Vec::with_capacity(events.len() + 2);
    // Metadata events give the process and threads readable names.
    let mut proc_meta = JsonObject::new();
    proc_meta
        .field_str("ph", "M")
        .field_str("name", "process_name")
        .field_u64("pid", TRACE_PID)
        .field_raw("args", "{\"name\": \"banyan\"}");
    parts.push(proc_meta.finish());
    let mut tids: Vec<u64> = events.iter().map(|e| e.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    for tid in tids {
        let mut m = JsonObject::new();
        m.field_str("ph", "M")
            .field_str("name", "thread_name")
            .field_u64("pid", TRACE_PID)
            .field_u64("tid", tid)
            .field_raw("args", &format!("{{\"name\": \"{}\"}}", escape(&format!("thread-{tid}"))));
        parts.push(m.finish());
    }
    parts.extend(events.iter().map(event_json));
    let mut doc = JsonObject::new();
    doc.field_raw("traceEvents", &format!("[\n  {}\n]", parts.join(",\n  ")))
        .field_str("displayTimeUnit", "ms");
    format!("{}\n", doc.finish_pretty(2))
}

/// Render a full trace document from a span set's event log.
pub fn trace_json(spans: &SpanSet) -> String {
    trace_json_from_events(&spans.events())
}

/// Write the trace document for `spans` to `path`.
pub fn write_trace(path: &std::path::Path, spans: &SpanSet) -> std::io::Result<()> {
    std::fs::write(path, trace_json(spans))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_document_has_required_fields() {
        let events = vec![
            SpanEvent { name: "net/warmup".into(), ts_us: 0, dur_us: 120, tid: 0 },
            SpanEvent { name: "net/measure".into(), ts_us: 120, dur_us: 4_500, tid: 0 },
            SpanEvent { name: "runner/worker01".into(), ts_us: 10, dur_us: 4_000, tid: 1 },
        ];
        let doc = trace_json_from_events(&events);
        assert!(doc.contains("\"traceEvents\""));
        assert!(doc.contains("\"ph\": \"X\""));
        assert!(doc.contains("\"name\": \"net/measure\""));
        assert!(doc.contains("\"dur\": 4500"));
        assert!(doc.contains("\"tid\": 1"));
        assert!(doc.contains("\"process_name\""));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
    }

    #[test]
    fn live_span_set_exports_its_spans() {
        let set = SpanSet::new();
        {
            let _g = set.time("queue/measure");
        }
        let doc = trace_json(&set);
        assert!(doc.contains("\"queue/measure\""));
        assert!(doc.contains("\"pid\": 1"));
    }

    #[test]
    fn empty_trace_is_still_valid_shape() {
        let doc = trace_json_from_events(&[]);
        assert!(doc.contains("\"traceEvents\""));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
    }

    #[test]
    fn empty_span_set_exports_a_parseable_document() {
        use crate::json::JsonValue;
        let doc = trace_json(&SpanSet::new());
        let parsed = JsonValue::parse(&doc).expect("empty trace parses");
        let events = parsed
            .get("traceEvents")
            .and_then(JsonValue::as_array)
            .expect("traceEvents array");
        // Only the process_name metadata event; no thread rows without
        // events, and no complete events.
        assert_eq!(events.len(), 1);
        assert_eq!(
            events[0].get("ph").and_then(JsonValue::as_str),
            Some("M")
        );
        assert_eq!(
            parsed.get("displayTimeUnit").and_then(JsonValue::as_str),
            Some("ms")
        );
    }

    #[test]
    fn event_names_are_json_escaped() {
        use crate::json::JsonValue;
        let events = vec![SpanEvent {
            name: "odd \"name\"\\with\ncontrol\tchars".into(),
            ts_us: 1,
            dur_us: 2,
            tid: 7,
        }];
        let doc = trace_json_from_events(&events);
        let parsed = JsonValue::parse(&doc).expect("escaped names still parse");
        let evs = parsed
            .get("traceEvents")
            .and_then(JsonValue::as_array)
            .unwrap();
        let complete = evs
            .iter()
            .find(|e| e.get("ph").and_then(JsonValue::as_str) == Some("X"))
            .expect("complete event present");
        // The parser must recover the original name byte for byte.
        assert_eq!(
            complete.get("name").and_then(JsonValue::as_str),
            Some("odd \"name\"\\with\ncontrol\tchars")
        );
        assert_eq!(
            complete.get("cat").and_then(JsonValue::as_str),
            Some("banyan")
        );
    }

    #[test]
    fn exported_events_round_trip_through_the_parser() {
        use crate::json::JsonValue;
        let events = vec![
            SpanEvent { name: "a".into(), ts_us: 0, dur_us: 10, tid: 0 },
            SpanEvent { name: "b".into(), ts_us: 5, dur_us: 7, tid: 3 },
            // Largest magnitude that survives the parser's f64 numbers.
            SpanEvent { name: "c".into(), ts_us: 1 << 52, dur_us: 0, tid: 3 },
        ];
        let doc = trace_json_from_events(&events);
        let parsed = JsonValue::parse(&doc).expect("trace parses");
        let evs = parsed
            .get("traceEvents")
            .and_then(JsonValue::as_array)
            .unwrap();
        let complete: Vec<&JsonValue> = evs
            .iter()
            .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("X"))
            .collect();
        assert_eq!(complete.len(), events.len());
        for (orig, got) in events.iter().zip(&complete) {
            assert_eq!(got.get("name").and_then(JsonValue::as_str), Some(orig.name.as_str()));
            assert_eq!(got.get("ts").and_then(JsonValue::as_u64), Some(orig.ts_us));
            assert_eq!(got.get("dur").and_then(JsonValue::as_u64), Some(orig.dur_us));
            assert_eq!(got.get("tid").and_then(JsonValue::as_u64), Some(orig.tid));
            assert_eq!(got.get("pid").and_then(JsonValue::as_u64), Some(TRACE_PID));
        }
        // One thread_name metadata row per distinct tid (0 and 3).
        let meta_threads = evs
            .iter()
            .filter(|e| {
                e.get("ph").and_then(JsonValue::as_str) == Some("M")
                    && e.get("name").and_then(JsonValue::as_str) == Some("thread_name")
            })
            .count();
        assert_eq!(meta_threads, 2);
    }
}
