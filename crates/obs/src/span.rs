//! Hierarchical wall-clock span timing.
//!
//! A span is named by a `/`-separated path (`"net/warmup"`,
//! `"runner/worker03"`); starting one returns an RAII guard that
//! records the elapsed wall time into the shared [`SpanSet`] on drop.
//! Spans are coarse (per phase, per worker — never per cycle), so a
//! mutexed map is plenty; the disabled path ([`SpanSet::noop`]) takes
//! no timestamps and touches no locks.

use crate::json::JsonObject;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

/// Accumulated timing of one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Times the span was entered.
    pub calls: u64,
    /// Total wall time across all calls, nanoseconds.
    pub total_ns: u64,
}

impl SpanStat {
    /// Total wall time in seconds.
    pub fn secs(&self) -> f64 {
        self.total_ns as f64 * 1e-9
    }
}

/// Shared, thread-safe collection of span timings.
#[derive(Debug, Default)]
pub struct SpanSet {
    spans: Mutex<BTreeMap<String, SpanStat>>,
}

impl SpanSet {
    /// An empty span set.
    pub fn new() -> Self {
        SpanSet::default()
    }

    /// Starts a span; the returned guard records on drop.
    pub fn time<'a>(&'a self, path: &str) -> SpanGuard<'a> {
        SpanGuard {
            active: Some((self, path.to_string(), Instant::now())),
        }
    }

    /// A guard that records nothing (the disabled-telemetry path).
    pub fn noop() -> SpanGuard<'static> {
        SpanGuard { active: None }
    }

    /// Adds `ns` to `path` (also usable for externally timed phases).
    pub fn record_ns(&self, path: &str, ns: u64) {
        let mut m = self.spans.lock().expect("span set poisoned");
        let st = m.entry(path.to_string()).or_default();
        st.calls += 1;
        st.total_ns += ns;
    }

    /// Accumulated stat for `path`, if any span completed under it.
    pub fn stat(&self, path: &str) -> Option<SpanStat> {
        self.spans.lock().expect("span set poisoned").get(path).copied()
    }

    /// All recorded spans, sorted by path.
    pub fn snapshot(&self) -> Vec<(String, SpanStat)> {
        self.spans
            .lock()
            .expect("span set poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Serializes as `{"path": {"calls": n, "total_ns": ns, "secs": s}}`.
    pub fn snapshot_json(&self) -> String {
        let mut out = JsonObject::new();
        for (path, st) in self.snapshot() {
            let mut o = JsonObject::new();
            o.field_u64("calls", st.calls)
                .field_u64("total_ns", st.total_ns)
                .field_f64("secs", st.secs());
            out.field_raw(&path, &o.finish());
        }
        out.finish()
    }
}

/// RAII guard: records elapsed time into its [`SpanSet`] when dropped.
/// The no-op variant (disabled telemetry) holds nothing and does
/// nothing.
#[must_use = "a span guard measures until it is dropped"]
pub struct SpanGuard<'a> {
    active: Option<(&'a SpanSet, String, Instant)>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some((set, path, start)) = self.active.take() {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            set.record_ns(&path, ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_records_on_drop() {
        let set = SpanSet::new();
        {
            let _g = set.time("a/b");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let st = set.stat("a/b").unwrap();
        assert_eq!(st.calls, 1);
        assert!(st.total_ns >= 1_000_000, "{}", st.total_ns);
    }

    #[test]
    fn repeated_spans_accumulate() {
        let set = SpanSet::new();
        for _ in 0..3 {
            let _g = set.time("x");
        }
        assert_eq!(set.stat("x").unwrap().calls, 3);
    }

    #[test]
    fn noop_guard_records_nothing() {
        let set = SpanSet::new();
        {
            let _g = SpanSet::noop();
        }
        assert!(set.snapshot().is_empty());
    }

    #[test]
    fn snapshot_json_sorted_and_balanced() {
        let set = SpanSet::new();
        set.record_ns("b", 5);
        set.record_ns("a", 1_500_000_000);
        let s = set.snapshot_json();
        let a = s.find("\"a\"").unwrap();
        let b = s.find("\"b\"").unwrap();
        assert!(a < b, "{s}");
        assert!(s.contains("\"secs\": 1.5"));
        assert_eq!(s.matches('{').count(), s.matches('}').count());
    }
}
