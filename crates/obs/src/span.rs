//! Hierarchical wall-clock span timing.
//!
//! A span is named by a `/`-separated path (`"net/warmup"`,
//! `"runner/worker03"`); starting one returns an RAII guard that
//! records the elapsed wall time into the shared [`SpanSet`] on drop.
//! Spans are coarse (per phase, per worker — never per cycle), so a
//! mutexed map is plenty; the disabled path ([`SpanSet::noop`]) takes
//! no timestamps and touches no locks.

use crate::json::JsonObject;
use crate::sketch::QuantileSet;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Completed span events kept for trace export are capped so a
/// long-running job cannot grow the log without bound. Spans are per
/// phase / per worker, so real runs stay far below this.
const MAX_TRACE_EVENTS: usize = 65_536;

/// Process-wide dense thread ids for trace export (`std::thread::ThreadId`
/// has no stable integer form). Each thread gets the next counter value
/// on first use.
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static TRACE_TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// Dense id of the calling thread, stable for the thread's lifetime.
pub fn trace_tid() -> u64 {
    TRACE_TID.with(|t| *t)
}

/// One completed span occurrence, retained for trace export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span path (`"net/measure"`).
    pub name: String,
    /// Start timestamp, microseconds since the [`SpanSet`]'s epoch.
    pub ts_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
    /// Dense thread id (see [`trace_tid`]).
    pub tid: u64,
}

/// Accumulated timing of one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Times the span was entered.
    pub calls: u64,
    /// Total wall time across all calls, nanoseconds.
    pub total_ns: u64,
}

impl SpanStat {
    /// Total wall time in seconds.
    pub fn secs(&self) -> f64 {
        self.total_ns as f64 * 1e-9
    }
}

/// Shared, thread-safe collection of span timings.
///
/// Besides the per-path aggregate [`SpanStat`]s, every completed span
/// also appends a [`SpanEvent`] (bounded by [`MAX_TRACE_EVENTS`]) for
/// `chrome://tracing` export, and feeds a per-path P² [`QuantileSet`]
/// of durations in seconds (p50/p90/p99/p999 of span wall time).
#[derive(Debug)]
pub struct SpanSet {
    spans: Mutex<BTreeMap<String, SpanStat>>,
    /// Zero point for event timestamps: creation of this set.
    epoch: Instant,
    events: Mutex<Vec<SpanEvent>>,
    quantiles: Mutex<BTreeMap<String, QuantileSet>>,
}

impl Default for SpanSet {
    fn default() -> Self {
        SpanSet {
            spans: Mutex::new(BTreeMap::new()),
            epoch: Instant::now(),
            events: Mutex::new(Vec::new()),
            quantiles: Mutex::new(BTreeMap::new()),
        }
    }
}

impl SpanSet {
    /// An empty span set.
    pub fn new() -> Self {
        SpanSet::default()
    }

    /// Starts a span; the returned guard records on drop.
    pub fn time<'a>(&'a self, path: &str) -> SpanGuard<'a> {
        SpanGuard {
            active: Some((self, path.to_string(), Instant::now())),
        }
    }

    /// A guard that records nothing (the disabled-telemetry path).
    pub fn noop() -> SpanGuard<'static> {
        SpanGuard { active: None }
    }

    /// Adds `ns` to `path` (also usable for externally timed phases).
    /// The trace event's start time is synthesized as "now − duration"
    /// relative to the set's epoch, which is exact for guards dropped
    /// immediately after their span and a close bound otherwise.
    pub fn record_ns(&self, path: &str, ns: u64) {
        {
            let mut m = self.spans.lock().expect("span set poisoned");
            let st = m.entry(path.to_string()).or_default();
            st.calls += 1;
            st.total_ns += ns;
        }
        {
            let mut q = self.quantiles.lock().expect("span quantiles poisoned");
            q.entry(path.to_string()).or_default().record(ns as f64 * 1e-9);
        }
        let elapsed_us = u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX);
        let dur_us = ns / 1_000;
        let mut ev = self.events.lock().expect("span events poisoned");
        if ev.len() < MAX_TRACE_EVENTS {
            ev.push(SpanEvent {
                name: path.to_string(),
                ts_us: elapsed_us.saturating_sub(dur_us),
                dur_us,
                tid: trace_tid(),
            });
        }
    }

    /// All completed span events so far, in completion order.
    pub fn events(&self) -> Vec<SpanEvent> {
        self.events.lock().expect("span events poisoned").clone()
    }

    /// Per-path duration quantile estimates (seconds), sorted by path.
    pub fn duration_quantiles(&self) -> Vec<(String, QuantileSet)> {
        self.quantiles
            .lock()
            .expect("span quantiles poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// JSON object mapping span path to its duration quantiles.
    pub fn duration_quantiles_json(&self) -> String {
        let mut out = JsonObject::new();
        for (path, q) in self.duration_quantiles() {
            out.field_raw(&path, &q.to_json());
        }
        out.finish()
    }

    /// Accumulated stat for `path`, if any span completed under it.
    pub fn stat(&self, path: &str) -> Option<SpanStat> {
        self.spans.lock().expect("span set poisoned").get(path).copied()
    }

    /// All recorded spans, sorted by path.
    pub fn snapshot(&self) -> Vec<(String, SpanStat)> {
        self.spans
            .lock()
            .expect("span set poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Serializes as `{"path": {"calls": n, "total_ns": ns, "secs": s}}`.
    pub fn snapshot_json(&self) -> String {
        let mut out = JsonObject::new();
        for (path, st) in self.snapshot() {
            let mut o = JsonObject::new();
            o.field_u64("calls", st.calls)
                .field_u64("total_ns", st.total_ns)
                .field_f64("secs", st.secs());
            out.field_raw(&path, &o.finish());
        }
        out.finish()
    }
}

/// RAII guard: records elapsed time into its [`SpanSet`] when dropped.
/// The no-op variant (disabled telemetry) holds nothing and does
/// nothing.
#[must_use = "a span guard measures until it is dropped"]
pub struct SpanGuard<'a> {
    active: Option<(&'a SpanSet, String, Instant)>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some((set, path, start)) = self.active.take() {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            set.record_ns(&path, ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_records_on_drop() {
        let set = SpanSet::new();
        {
            let _g = set.time("a/b");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let st = set.stat("a/b").unwrap();
        assert_eq!(st.calls, 1);
        assert!(st.total_ns >= 1_000_000, "{}", st.total_ns);
    }

    #[test]
    fn repeated_spans_accumulate() {
        let set = SpanSet::new();
        for _ in 0..3 {
            let _g = set.time("x");
        }
        assert_eq!(set.stat("x").unwrap().calls, 3);
    }

    #[test]
    fn noop_guard_records_nothing() {
        let set = SpanSet::new();
        {
            let _g = SpanSet::noop();
        }
        assert!(set.snapshot().is_empty());
    }

    #[test]
    fn events_capture_name_duration_and_tid() {
        let set = SpanSet::new();
        {
            let _g = set.time("net/measure");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        set.record_ns("runner/merge", 2_000_000);
        let ev = set.events();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].name, "net/measure");
        assert!(ev[0].dur_us >= 1_000, "{}", ev[0].dur_us);
        assert_eq!(ev[1].name, "runner/merge");
        assert_eq!(ev[1].dur_us, 2_000);
        assert_eq!(ev[0].tid, ev[1].tid, "same thread, same tid");
        let other = std::thread::spawn(trace_tid).join().unwrap();
        assert_ne!(other, trace_tid(), "distinct threads get distinct tids");
    }

    #[test]
    fn duration_quantiles_track_span_times() {
        let set = SpanSet::new();
        for i in 1..=100u64 {
            set.record_ns("w", i * 1_000_000); // 1..=100 ms
        }
        let qs = set.duration_quantiles();
        assert_eq!(qs.len(), 1);
        let (path, q) = &qs[0];
        assert_eq!(path, "w");
        assert_eq!(q.count(), 100);
        let p50 = q.estimates()[0].1;
        assert!((p50 - 0.050).abs() < 0.01, "p50 {p50}");
        let json = set.duration_quantiles_json();
        assert!(json.contains("\"w\""));
        assert!(json.contains("\"p999\""));
    }

    #[test]
    fn snapshot_json_sorted_and_balanced() {
        let set = SpanSet::new();
        set.record_ns("b", 5);
        set.record_ns("a", 1_500_000_000);
        let s = set.snapshot_json();
        let a = s.find("\"a\"").unwrap();
        let b = s.find("\"b\"").unwrap();
        assert!(a < b, "{s}");
        assert!(s.contains("\"secs\": 1.5"));
        assert_eq!(s.matches('{').count(), s.matches('}').count());
    }
}
