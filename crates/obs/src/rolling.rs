//! Ring-buffered time-windowed aggregates: live rate/latency signals
//! for long-running daemons.
//!
//! The run-scoped registry and sketches answer "what happened over the
//! whole run" — useless for a server that never exits. A
//! [`RollingStat`] answers "what happened over the last 1 s / 10 s /
//! 60 s", at any instant, with three per-window signals:
//!
//! * **count / sum / max** over a ring of [`SLOTS_PER_WINDOW`] sub-slots
//!   per window, so rates (`count / window`) decay smoothly as slots
//!   age out rather than resetting cliff-style;
//! * **P² quantiles** ([`QuantileSet`]: p50/p90/p99/p999) over window
//!   epochs: each window duration keeps a *current* (in-progress) and
//!   *previous* (completed) epoch estimator. A query reports the
//!   completed previous epoch when one exists — a full window of
//!   observations — and falls back to the in-progress epoch otherwise
//!   (`complete` in [`WindowSnapshot`] says which). P² streams can't
//!   subtract old observations, so epoch rotation is the windowing
//!   mechanism; the reported quantiles are therefore between one and
//!   two windows old at worst, and the satellite tests pin the
//!   rotation edges.
//!
//! **Hot-path contract:** [`RollingStat::record`] only appends to a
//! bounded staging vector under a mutex (tens of nanoseconds); the
//! slot/P² folding happens on the *query* side ([`snapshot`]) or
//! whenever a maintenance thread calls [`flush`]. If the staging
//! buffer fills before anyone drains it, further observations are
//! dropped and counted ([`dropped`]), never blocking a request.
//!
//! All methods take an optional explicit clock (`…_at` variants, in
//! nanoseconds since construction) so tests can drive window
//! boundaries deterministically.
//!
//! [`snapshot`]: RollingStat::snapshot
//! [`flush`]: RollingStat::flush
//! [`dropped`]: RollingStat::dropped

use crate::sketch::{QuantileSet, REPORT_QUANTILES};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One tracked window duration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSpec {
    /// Display label (`"1s"`).
    pub label: &'static str,
    /// Window length in seconds.
    pub secs: u64,
}

/// The default SLO windows: 1 s, 10 s, 60 s.
pub const DEFAULT_WINDOWS: &[WindowSpec] = &[
    WindowSpec { label: "1s", secs: 1 },
    WindowSpec { label: "10s", secs: 10 },
    WindowSpec { label: "60s", secs: 60 },
];

/// Ring slots per window (slot width = window / this).
pub const SLOTS_PER_WINDOW: u64 = 10;

/// Staging-buffer cap: observations beyond this between flushes are
/// dropped (and counted) rather than growing without bound.
const STAGING_CAP: usize = 1 << 20;

const NANOS_PER_SEC: u64 = 1_000_000_000;

/// Labels for the reported quantiles, aligned with
/// [`REPORT_QUANTILES`].
pub const QUANTILE_LABELS: [&str; 4] = ["p50", "p90", "p99", "p999"];

#[derive(Debug, Clone, Copy, Default)]
struct Slot {
    /// Absolute slot index this slot's contents belong to.
    index: u64,
    count: u64,
    sum: u64,
    max: u64,
}

#[derive(Debug)]
struct Epoch {
    /// Absolute epoch number (`nanos / window_nanos`).
    number: u64,
    quantiles: QuantileSet,
    count: u64,
}

impl Epoch {
    fn new(number: u64) -> Self {
        Epoch {
            number,
            quantiles: QuantileSet::new(),
            count: 0,
        }
    }
}

#[derive(Debug)]
struct WindowState {
    spec: WindowSpec,
    slot_nanos: u64,
    window_nanos: u64,
    slots: Vec<Slot>,
    current: Epoch,
    previous: Option<Epoch>,
}

impl WindowState {
    fn new(spec: WindowSpec) -> Self {
        let window_nanos = spec.secs * NANOS_PER_SEC;
        WindowState {
            spec,
            slot_nanos: window_nanos / SLOTS_PER_WINDOW,
            window_nanos,
            slots: vec![Slot::default(); SLOTS_PER_WINDOW as usize],
            current: Epoch::new(0),
            previous: None,
        }
    }

    /// Moves the epoch estimators up to the epoch containing `nanos`.
    fn rotate(&mut self, nanos: u64) {
        let epoch = nanos / self.window_nanos;
        if epoch == self.current.number {
            return;
        }
        let old = std::mem::replace(&mut self.current, Epoch::new(epoch));
        // The old estimator is "the previous window" only if it is
        // exactly one epoch behind; after an idle gap it is stale.
        self.previous = (old.number + 1 == epoch && old.count > 0).then_some(old);
    }

    fn record(&mut self, nanos: u64, value: u64) {
        self.rotate(nanos);
        let slot_index = nanos / self.slot_nanos;
        let slot = &mut self.slots[(slot_index % SLOTS_PER_WINDOW) as usize];
        if slot.index != slot_index {
            *slot = Slot {
                index: slot_index,
                ..Slot::default()
            };
        }
        slot.count += 1;
        slot.sum += value;
        slot.max = slot.max.max(value);
        self.current.quantiles.record(value as f64);
        self.current.count += 1;
    }

    fn snapshot(&mut self, nanos: u64) -> WindowSnapshot {
        self.rotate(nanos);
        let now_slot = nanos / self.slot_nanos;
        let oldest_live = now_slot.saturating_sub(SLOTS_PER_WINDOW - 1);
        let (mut count, mut sum, mut max) = (0u64, 0u64, 0u64);
        for slot in &self.slots {
            if slot.index >= oldest_live && slot.index <= now_slot {
                count += slot.count;
                sum += slot.sum;
                max = max.max(slot.max);
            }
        }
        let (source, complete) = match &self.previous {
            Some(prev) if prev.count > 0 => (prev, true),
            _ => (&self.current, false),
        };
        let mut quantiles = [0.0f64; 4];
        if source.count > 0 {
            for ((q, est), slot) in source.quantiles.estimates().iter().zip(&mut quantiles) {
                debug_assert!(REPORT_QUANTILES.contains(q));
                *slot = *est;
            }
        }
        WindowSnapshot {
            spec: self.spec,
            count,
            sum,
            max,
            rate_per_sec: count as f64 / self.spec.secs as f64,
            quantiles,
            quantile_count: source.count,
            complete,
        }
    }
}

/// A point-in-time view of one window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSnapshot {
    /// The window this snapshot describes.
    pub spec: WindowSpec,
    /// Observations in the last `spec.secs` seconds (ring slots).
    pub count: u64,
    /// Sum of those observations.
    pub sum: u64,
    /// Largest of those observations.
    pub max: u64,
    /// `count / spec.secs`.
    pub rate_per_sec: f64,
    /// P² estimates at [`REPORT_QUANTILES`] (all 0.0 when
    /// `quantile_count == 0`).
    pub quantiles: [f64; 4],
    /// Observations behind the quantile estimates.
    pub quantile_count: u64,
    /// True when the quantiles come from a completed previous epoch
    /// (a full window), false when from the in-progress epoch.
    pub complete: bool,
}

impl WindowSnapshot {
    /// Mean over the ring slots (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// One stream of rolling-windowed observations (e.g. a route's request
/// latencies in µs).
#[derive(Debug)]
pub struct RollingStat {
    start: Instant,
    staging: Mutex<Vec<(u64, u64)>>,
    windows: Mutex<Vec<WindowState>>,
    total: AtomicU64,
    dropped: AtomicU64,
}

impl Default for RollingStat {
    fn default() -> Self {
        RollingStat::new()
    }
}

impl RollingStat {
    /// A stream over [`DEFAULT_WINDOWS`], anchored now.
    pub fn new() -> Self {
        RollingStat::with_windows(DEFAULT_WINDOWS)
    }

    /// A stream over caller-chosen windows, anchored now.
    pub fn with_windows(specs: &[WindowSpec]) -> Self {
        assert!(!specs.is_empty(), "rolling stat needs at least one window");
        RollingStat {
            start: Instant::now(),
            staging: Mutex::new(Vec::new()),
            windows: Mutex::new(specs.iter().map(|&s| WindowState::new(s)).collect()),
            total: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Records one observation now. Hot path: a bounded staged append.
    #[inline]
    pub fn record(&self, value: u64) {
        self.record_at(self.start.elapsed().as_nanos() as u64, value);
    }

    /// [`record`](Self::record) with an explicit clock (nanoseconds
    /// since construction). Timestamps are applied at flush time, so
    /// out-of-order records within one flush interval land in their
    /// recorded slot/epoch.
    #[inline]
    pub fn record_at(&self, nanos: u64, value: u64) {
        let mut staged = self.staging.lock().expect("rolling staging poisoned");
        if staged.len() >= STAGING_CAP {
            drop(staged);
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        staged.push((nanos, value));
        drop(staged);
        self.total.fetch_add(1, Ordering::Relaxed);
    }

    /// Folds staged observations into the window structures. Called
    /// automatically by [`snapshot`](Self::snapshot); a maintenance
    /// thread may also call it periodically to bound staging growth.
    pub fn flush(&self) {
        let staged = {
            let mut staging = self.staging.lock().expect("rolling staging poisoned");
            std::mem::take(&mut *staging)
        };
        if staged.is_empty() {
            return;
        }
        let mut windows = self.windows.lock().expect("rolling windows poisoned");
        for (nanos, value) in staged {
            for w in windows.iter_mut() {
                w.record(nanos, value);
            }
        }
    }

    /// Per-window snapshots, one per configured window, now.
    pub fn snapshot(&self) -> Vec<WindowSnapshot> {
        self.snapshot_at(self.start.elapsed().as_nanos() as u64)
    }

    /// [`snapshot`](Self::snapshot) with an explicit clock.
    pub fn snapshot_at(&self, nanos: u64) -> Vec<WindowSnapshot> {
        self.flush();
        let mut windows = self.windows.lock().expect("rolling windows poisoned");
        windows.iter_mut().map(|w| w.snapshot(nanos)).collect()
    }

    /// Observations recorded (accepted into staging) since construction.
    pub fn total_count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Observations dropped because the staging buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sketch::DistSketch;

    const S: u64 = NANOS_PER_SEC;

    fn one_sec() -> RollingStat {
        RollingStat::with_windows(&[WindowSpec { label: "1s", secs: 1 }])
    }

    #[test]
    fn count_sum_max_cover_exactly_the_window() {
        let r = one_sec();
        r.record_at(0, 10);
        r.record_at(S / 2, 30);
        let snap = &r.snapshot_at(S / 2)[0];
        assert_eq!((snap.count, snap.sum, snap.max), (2, 40, 30));
        assert_eq!(snap.mean(), 20.0);
        // 1.05 s later the slot holding the first observation has aged
        // out; the second (at 0.5 s, slot 5) is gone by 1.55 s.
        let snap = &r.snapshot_at(S + S / 20)[0];
        assert_eq!(snap.count, 1, "first slot aged out");
        assert_eq!(snap.max, 30);
        let snap = &r.snapshot_at(S + S * 11 / 20)[0];
        assert_eq!(snap.count, 0, "everything aged out");
        assert_eq!(snap.max, 0);
    }

    #[test]
    fn empty_window_quantile_queries_are_zero_and_incomplete() {
        let r = RollingStat::new();
        for snap in r.snapshot_at(5 * S) {
            assert_eq!(snap.count, 0);
            assert_eq!(snap.quantile_count, 0);
            assert!(!snap.complete);
            assert_eq!(snap.quantiles, [0.0; 4]);
            assert_eq!(snap.rate_per_sec, 0.0);
            assert_eq!(snap.mean(), 0.0);
        }
    }

    #[test]
    fn window_rotation_exactly_at_the_boundary() {
        let r = one_sec();
        // Epoch 0: the nanosecond *before* the boundary still belongs
        // to it; the boundary nanosecond itself opens epoch 1.
        r.record_at(S - 1, 7);
        r.record_at(S, 100);
        let snap = &r.snapshot_at(S)[0];
        // Quantiles come from the completed epoch 0 (the lone 7), not
        // the in-progress epoch 1.
        assert!(snap.complete);
        assert_eq!(snap.quantile_count, 1);
        assert_eq!(snap.quantiles[0], 7.0);
        // The ring still sees both observations (within the last 1 s).
        assert_eq!(snap.count, 2);

        // One full epoch with no records: the old "previous" is stale
        // and the estimator falls back to in-progress (empty) data.
        let snap = &r.snapshot_at(3 * S)[0];
        assert!(!snap.complete);
        assert_eq!(snap.quantile_count, 0);
        assert_eq!(snap.quantiles, [0.0; 4]);
    }

    #[test]
    fn in_progress_epoch_serves_quantiles_until_first_rotation() {
        let r = one_sec();
        for i in 0..100 {
            r.record_at(i, i);
        }
        let snap = &r.snapshot_at(S / 2)[0];
        assert!(!snap.complete, "epoch 0 is still in progress");
        assert_eq!(snap.quantile_count, 100);
        assert!(snap.quantiles[0] > 0.0);
        assert!(
            snap.quantiles[0] <= snap.quantiles[1]
                && snap.quantiles[1] <= snap.quantiles[2]
                && snap.quantiles[2] <= snap.quantiles[3],
            "{:?}",
            snap.quantiles
        );
    }

    #[test]
    fn sixty_second_window_agrees_with_exact_sketch_within_p2_tolerance() {
        let windows = &[WindowSpec { label: "60s", secs: 60 }];
        let r = RollingStat::with_windows(windows);
        let mut sketch = DistSketch::new_exact();
        // A skewed integer stream (geometric-ish tail), all within one
        // 60 s epoch, deterministic xorshift.
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        for i in 0..4000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let v = (x % 97) * (x % 13) / 12 + (i % 7);
            r.record_at(i * 10_000, v);
            sketch.record(v);
        }
        let snap = &r.snapshot_at(50 * S)[0];
        assert_eq!(snap.count, 4000);
        assert_eq!(snap.quantile_count, 4000);
        for (slot, &q) in snap.quantiles.iter().zip(REPORT_QUANTILES.iter()) {
            let exact = sketch.quantile(q) as f64;
            let spread = sketch.quantile(0.999) as f64 - sketch.quantile(0.5) as f64;
            let tol = (0.10 * spread).max(2.0);
            assert!(
                (slot - exact).abs() <= tol,
                "q{q}: p2 {slot} vs exact {exact} (tol {tol})"
            );
        }
    }

    #[test]
    fn staging_cap_drops_and_counts_instead_of_growing() {
        let r = one_sec();
        // Reach the cap artificially by pre-filling staging.
        {
            let mut staged = r.staging.lock().unwrap();
            staged.resize(STAGING_CAP, (0, 0));
        }
        r.record_at(0, 1);
        assert_eq!(r.dropped(), 1);
        r.flush();
        r.record_at(0, 1);
        assert_eq!(r.dropped(), 1, "after a flush records are accepted again");
    }

    #[test]
    fn concurrent_records_all_arrive() {
        let r = std::sync::Arc::new(RollingStat::new());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let r = std::sync::Arc::clone(&r);
                s.spawn(move || {
                    for i in 0..1000 {
                        r.record_at(t * 1000 + i, i % 50);
                    }
                });
            }
        });
        let snap = &r.snapshot_at(1000 * 4)[0];
        assert_eq!(snap.count, 4000);
        assert_eq!(r.total_count(), 4000);
    }
}
