//! Progress accounting and the rate-limited stderr heartbeat.
//!
//! Workers push coarse deltas (every few thousand cycles, never per
//! cycle) into a shared [`Progress`] ledger; the [`Heartbeat`] turns
//! the ledger into at most one human-readable stderr line per
//! `min_interval`, gated by the shared [`RateLimiter`] (primed: a
//! line at t=0 would carry no information, so the first interval is
//! silent). Everything goes to **stderr** so stdout stays
//! machine-parseable — a regression test in the CLI suite pins that.

use crate::limiter::RateLimiter;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Shared run-progress ledger (atomic; updated in coarse deltas).
#[derive(Debug, Default)]
pub struct Progress {
    expected_cycles: AtomicU64,
    cycles: AtomicU64,
    injected: AtomicU64,
    delivered: AtomicU64,
    rejected: AtomicU64,
}

/// A point-in-time copy of the ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgressSnapshot {
    /// Planned cycles (warmup + measure, summed over replications);
    /// drain cycles run past this.
    pub expected_cycles: u64,
    /// Cycles simulated so far.
    pub cycles: u64,
    /// Messages injected so far.
    pub injected: u64,
    /// Messages delivered so far.
    pub delivered: u64,
    /// Injection attempts rejected so far (finite buffers).
    pub rejected: u64,
}

impl ProgressSnapshot {
    /// Messages currently queued somewhere in the network.
    pub fn in_flight(&self) -> u64 {
        self.injected.saturating_sub(self.delivered)
    }
}

impl Progress {
    /// Adds to the planned-cycles denominator (call before a run).
    pub fn add_expected_cycles(&self, n: u64) {
        self.expected_cycles.fetch_add(n, Ordering::Relaxed);
    }

    /// Records a batch of simulated cycles.
    #[inline]
    pub fn add_cycles(&self, n: u64) {
        self.cycles.fetch_add(n, Ordering::Relaxed);
    }

    /// Records counter deltas since the caller's last push.
    #[inline]
    pub fn add_messages(&self, injected: u64, delivered: u64, rejected: u64) {
        if injected > 0 {
            self.injected.fetch_add(injected, Ordering::Relaxed);
        }
        if delivered > 0 {
            self.delivered.fetch_add(delivered, Ordering::Relaxed);
        }
        if rejected > 0 {
            self.rejected.fetch_add(rejected, Ordering::Relaxed);
        }
    }

    /// A consistent-enough copy for display (fields load independently;
    /// the heartbeat tolerates a cycle of skew between them).
    pub fn snapshot(&self) -> ProgressSnapshot {
        ProgressSnapshot {
            expected_cycles: self.expected_cycles.load(Ordering::Relaxed),
            cycles: self.cycles.load(Ordering::Relaxed),
            injected: self.injected.load(Ordering::Relaxed),
            delivered: self.delivered.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
        }
    }
}

/// Rate-limited stderr progress reporter.
#[derive(Debug)]
pub struct Heartbeat {
    limiter: RateLimiter,
    started: Instant,
    state: Mutex<HbState>,
    lines: AtomicU64,
}

#[derive(Debug)]
struct HbState {
    last_emit: Instant,
    last_cycles: u64,
    last_delivered: u64,
}

impl Heartbeat {
    /// Creates a heartbeat emitting at most one line per `min_interval`.
    pub fn new(min_interval: Duration) -> Self {
        let now = Instant::now();
        Heartbeat {
            // Primed: construction counts as the last event, so the
            // first interval after startup stays silent.
            limiter: RateLimiter::primed(min_interval),
            started: now,
            state: Mutex::new(HbState {
                last_emit: now,
                last_cycles: 0,
                last_delivered: 0,
            }),
            lines: AtomicU64::new(0),
        }
    }

    /// Emits a line if the interval elapsed; contended or early calls
    /// return `false` immediately (never blocks a worker).
    pub fn maybe_emit(&self, progress: &Progress) -> bool {
        let Ok(mut st) = self.state.try_lock() else {
            return false;
        };
        if !self.limiter.allow() {
            return false;
        }
        let now = Instant::now();
        let snap = progress.snapshot();
        let dt = now.duration_since(st.last_emit).as_secs_f64();
        let cps = (snap.cycles.saturating_sub(st.last_cycles)) as f64 / dt;
        let mps = (snap.delivered.saturating_sub(st.last_delivered)) as f64 / dt;
        st.last_emit = now;
        st.last_cycles = snap.cycles;
        st.last_delivered = snap.delivered;
        drop(st);
        eprintln!("{}", render(&snap, cps, mps, self.started.elapsed()));
        self.lines.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Unconditionally emits a final summary line (run completion).
    pub fn emit_final(&self, progress: &Progress) {
        let snap = progress.snapshot();
        let elapsed = self.started.elapsed().as_secs_f64().max(1e-9);
        let cps = snap.cycles as f64 / elapsed;
        let mps = snap.delivered as f64 / elapsed;
        eprintln!("{}", render(&snap, cps, mps, self.started.elapsed()));
        self.lines.fetch_add(1, Ordering::Relaxed);
    }

    /// Lines emitted so far.
    pub fn lines_emitted(&self) -> u64 {
        self.lines.load(Ordering::Relaxed)
    }
}

/// Renders one heartbeat line (pure — unit-tested directly).
fn render(snap: &ProgressSnapshot, cps: f64, mps: f64, elapsed: Duration) -> String {
    let pct = if snap.expected_cycles > 0 {
        (100.0 * snap.cycles as f64 / snap.expected_cycles as f64).min(100.0)
    } else {
        0.0
    };
    let eta = if snap.expected_cycles > snap.cycles && cps > 0.0 {
        format!(
            "eta {:.1}s",
            (snap.expected_cycles - snap.cycles) as f64 / cps
        )
    } else {
        "draining".to_string()
    };
    let mut line = format!(
        "[banyan {:6.1}s] {pct:5.1}% | {} cycles ({}/s) | {} delivered ({}/s) | in-flight {}",
        elapsed.as_secs_f64(),
        group_digits(snap.cycles),
        si(cps),
        group_digits(snap.delivered),
        si(mps),
        group_digits(snap.in_flight()),
    );
    if snap.rejected > 0 {
        line.push_str(&format!(" | rejected {}", group_digits(snap.rejected)));
    }
    line.push_str(&format!(" | {eta}"));
    line
}

/// `1234567 → "1,234,567"`.
fn group_digits(v: u64) -> String {
    let s = v.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Compact SI-ish rate formatting (`2.1M`, `43.5k`, `870`).
fn si(v: f64) -> String {
    if !v.is_finite() || v < 0.0 {
        return "0".to_string();
    }
    if v >= 1e9 {
        format!("{:.2}G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(expected: u64, cycles: u64, inj: u64, del: u64, rej: u64) -> ProgressSnapshot {
        ProgressSnapshot {
            expected_cycles: expected,
            cycles,
            injected: inj,
            delivered: del,
            rejected: rej,
        }
    }

    #[test]
    fn progress_accumulates_deltas() {
        let p = Progress::default();
        p.add_expected_cycles(1_000);
        p.add_cycles(64);
        p.add_cycles(64);
        p.add_messages(10, 7, 1);
        let s = p.snapshot();
        assert_eq!(s.cycles, 128);
        assert_eq!(s.in_flight(), 3);
        assert_eq!(s.rejected, 1);
    }

    #[test]
    fn render_includes_percent_rates_and_eta() {
        let line = render(&snap(1_000, 500, 900, 800, 0), 1_000.0, 2_000_000.0, Duration::from_secs(2));
        assert!(line.contains("50.0%"), "{line}");
        assert!(line.contains("2.00M/s"), "{line}");
        assert!(line.contains("in-flight 100"), "{line}");
        assert!(line.contains("eta 0.5s"), "{line}");
        assert!(!line.contains("rejected"), "{line}");
    }

    #[test]
    fn render_shows_rejections_and_drain() {
        let line = render(&snap(100, 150, 10, 10, 5), 10.0, 0.0, Duration::from_secs(1));
        assert!(line.contains("rejected 5"), "{line}");
        assert!(line.contains("draining"), "{line}");
        assert!(line.contains("100.0%"), "{line}");
    }

    #[test]
    fn heartbeat_rate_limits() {
        let hb = Heartbeat::new(Duration::from_secs(3600));
        let p = Progress::default();
        // First call is within the interval of construction: suppressed.
        assert!(!hb.maybe_emit(&p));
        assert_eq!(hb.lines_emitted(), 0);
        hb.emit_final(&p);
        assert_eq!(hb.lines_emitted(), 1);
    }

    #[test]
    fn zero_interval_heartbeat_emits() {
        let hb = Heartbeat::new(Duration::ZERO);
        let p = Progress::default();
        p.add_expected_cycles(10);
        p.add_cycles(5);
        assert!(hb.maybe_emit(&p));
        assert_eq!(hb.lines_emitted(), 1);
    }

    #[test]
    fn digit_grouping_and_si() {
        assert_eq!(group_digits(0), "0");
        assert_eq!(group_digits(1_234_567), "1,234,567");
        assert_eq!(si(870.4), "870");
        assert_eq!(si(43_500.0), "43.5k");
        assert_eq!(si(2_100_000.0), "2.10M");
        assert_eq!(si(3.2e9), "3.20G");
    }
}
