//! Cross-thread integration tests for the telemetry sink: many workers
//! hammering one shared `Telemetry` must lose no updates, and the
//! manifest must serialize the combined state as valid-enough JSON.

use banyan_obs::json::JsonValue;
use banyan_obs::sketch::DistSketch;
use banyan_obs::{Manifest, Telemetry, TelemetryConfig};

#[test]
fn shared_sink_across_threads_loses_nothing() {
    let tel = Telemetry::new(TelemetryConfig::on());
    const WORKERS: usize = 8;
    const PER_WORKER: u64 = 10_000;
    std::thread::scope(|scope| {
        for w in 0..WORKERS {
            let tel = &tel;
            scope.spawn(move || {
                let _span = tel.span(&format!("worker{w:02}"));
                let c = tel.registry().counter("events");
                let g = tel.registry().gauge("depth");
                let h = tel.registry().histogram("sizes", &[1, 8, 64]);
                for i in 0..PER_WORKER {
                    c.inc();
                    g.set(i % 100);
                    h.record(i % 70);
                    tel.progress().add_cycles(1);
                }
                tel.progress().add_messages(PER_WORKER, PER_WORKER / 2, 0);
            });
        }
    });
    let total = WORKERS as u64 * PER_WORKER;
    assert_eq!(tel.registry().counter_value("events"), Some(total));
    let snap = tel.progress().snapshot();
    assert_eq!(snap.cycles, total);
    assert_eq!(snap.injected, total);
    assert_eq!(snap.in_flight(), total / 2);
    // Every worker span recorded exactly once.
    let spans = tel.spans().snapshot();
    assert_eq!(spans.len(), WORKERS);
    assert!(spans.iter().all(|(_, st)| st.calls == 1));
}

#[test]
fn manifest_of_concurrent_run_is_balanced_json() {
    let tel = Telemetry::new(TelemetryConfig::on());
    std::thread::scope(|scope| {
        for i in 0..4 {
            let tel = &tel;
            scope.spawn(move || {
                tel.registry().counter("net.injected_total").add(100 + i);
                tel.log_run(format!("rep {i} seed={i}"));
            });
        }
    });
    let mut m = Manifest::new("concurrent");
    m.config("k", 2).seed("base", 1).reps(4).threads(4).phase("all", 0.5);
    let json = m.to_json(Some(&tel));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
    assert!(json.contains("\"net.injected_total\": 406"));
    assert!(json.contains("rep 0 seed=0") || json.contains("rep 3 seed=3"));
}

#[test]
fn worker_local_sketches_merge_losslessly_across_threads() {
    // The simulator's pattern: each worker records into a private
    // sketch (no contention in the hot loop) and folds it into the
    // shared set once at the end. The fold must be lossless and
    // independent of worker interleaving.
    let tel = Telemetry::new(TelemetryConfig::on());
    const WORKERS: u64 = 8;
    const PER_WORKER: u64 = 5_000;
    std::thread::scope(|scope| {
        for w in 0..WORKERS {
            let tel = &tel;
            scope.spawn(move || {
                let mut local = DistSketch::new_exact();
                for i in 0..PER_WORKER {
                    // Worker-dependent values so merge order could matter
                    // if the fold were not commutative.
                    local.record((w * 31 + i) % 97);
                }
                tel.sketches().merge_sketch("net.wait.total", &local);
            });
        }
    });
    // Single-threaded reference over the same multiset of values.
    let mut reference = DistSketch::new_exact();
    for w in 0..WORKERS {
        for i in 0..PER_WORKER {
            reference.record((w * 31 + i) % 97);
        }
    }
    let merged = tel.sketches().get("net.wait.total").expect("merged sketch");
    assert_eq!(merged.count(), WORKERS * PER_WORKER);
    assert_eq!(merged.pmf_points(), reference.pmf_points());
    assert_eq!(merged.mean().to_bits(), reference.mean().to_bits());
    assert_eq!(merged.variance().to_bits(), reference.variance().to_bits());
}

#[test]
fn trace_export_of_concurrent_spans_parses_and_names_threads() {
    let tel = Telemetry::new(TelemetryConfig::on());
    std::thread::scope(|scope| {
        for w in 0..4 {
            let tel = &tel;
            scope.spawn(move || {
                let _outer = tel.span(&format!("worker{w:02}"));
                let _inner = tel.span("net/measure");
            });
        }
    });
    let doc = JsonValue::parse(&banyan_obs::trace::trace_json(tel.spans()))
        .expect("trace is valid JSON");
    let events = doc.get("traceEvents").unwrap().as_array().unwrap();
    // 8 complete spans plus metadata records.
    let complete: Vec<_> = events
        .iter()
        .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("X"))
        .collect();
    assert_eq!(complete.len(), 8);
    for e in &complete {
        for key in ["ts", "dur", "pid", "tid"] {
            assert!(e.get(key).and_then(JsonValue::as_u64).is_some(), "missing {key}");
        }
    }
    assert!(events.iter().any(|e| {
        e.get("ph").and_then(JsonValue::as_str) == Some("M")
            && e.get("name").and_then(JsonValue::as_str) == Some("process_name")
    }));
    // Spans opened on different OS threads land on distinct tids.
    let tids: std::collections::BTreeSet<u64> = complete
        .iter()
        .filter(|e| {
            e.get("name")
                .and_then(JsonValue::as_str)
                .is_some_and(|n| n.starts_with("worker"))
        })
        .filter_map(|e| e.get("tid").and_then(JsonValue::as_u64))
        .collect();
    assert_eq!(tids.len(), 4, "one tid per worker thread");
}
