//! Cross-thread integration tests for the telemetry sink: many workers
//! hammering one shared `Telemetry` must lose no updates, and the
//! manifest must serialize the combined state as valid-enough JSON.

use banyan_obs::{Manifest, Telemetry, TelemetryConfig};

#[test]
fn shared_sink_across_threads_loses_nothing() {
    let tel = Telemetry::new(TelemetryConfig::on());
    const WORKERS: usize = 8;
    const PER_WORKER: u64 = 10_000;
    std::thread::scope(|scope| {
        for w in 0..WORKERS {
            let tel = &tel;
            scope.spawn(move || {
                let _span = tel.span(&format!("worker{w:02}"));
                let c = tel.registry().counter("events");
                let g = tel.registry().gauge("depth");
                let h = tel.registry().histogram("sizes", &[1, 8, 64]);
                for i in 0..PER_WORKER {
                    c.inc();
                    g.set(i % 100);
                    h.record(i % 70);
                    tel.progress().add_cycles(1);
                }
                tel.progress().add_messages(PER_WORKER, PER_WORKER / 2, 0);
            });
        }
    });
    let total = WORKERS as u64 * PER_WORKER;
    assert_eq!(tel.registry().counter_value("events"), Some(total));
    let snap = tel.progress().snapshot();
    assert_eq!(snap.cycles, total);
    assert_eq!(snap.injected, total);
    assert_eq!(snap.in_flight(), total / 2);
    // Every worker span recorded exactly once.
    let spans = tel.spans().snapshot();
    assert_eq!(spans.len(), WORKERS);
    assert!(spans.iter().all(|(_, st)| st.calls == 1));
}

#[test]
fn manifest_of_concurrent_run_is_balanced_json() {
    let tel = Telemetry::new(TelemetryConfig::on());
    std::thread::scope(|scope| {
        for i in 0..4 {
            let tel = &tel;
            scope.spawn(move || {
                tel.registry().counter("net.injected_total").add(100 + i);
                tel.log_run(format!("rep {i} seed={i}"));
            });
        }
    });
    let mut m = Manifest::new("concurrent");
    m.config("k", 2).seed("base", 1).reps(4).threads(4).phase("all", 0.5);
    let json = m.to_json(Some(&tel));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
    assert!(json.contains("\"net.injected_total\": 406"));
    assert!(json.contains("rep 0 seed=0") || json.contains("rep 3 seed=3"));
}
