//! Randomized property tests for the numerical substrate, driven by the
//! seeded in-repo harness (`banyan_prng::check`): each property runs
//! against many deterministic pseudo-random cases, and a failure prints
//! the drawn inputs plus the seed that reproduces it.

use banyan_numerics::fft::{convolve, fft, ifft};
use banyan_numerics::poly::Poly;
use banyan_numerics::series::{finite_derivatives, kahan_sum};
use banyan_numerics::special::{binomial, ln_gamma, reg_gamma_lower, reg_gamma_upper};
use banyan_numerics::{brent, Complex};
use banyan_prng::check::check;

const CASES: u32 = 256;

#[test]
fn fft_round_trip_is_identity() {
    check(CASES, |g| {
        let orig: Vec<Complex> = (0..64)
            .map(|_| Complex::new(g.f64(-100.0..100.0), g.f64(-100.0..100.0)))
            .collect();
        let mut data = orig.clone();
        fft(&mut data);
        ifft(&mut data);
        for (a, b) in data.iter().zip(&orig) {
            assert!((*a - *b).abs() < 1e-9);
        }
    });
}

#[test]
fn fft_is_linear() {
    check(CASES, |g| {
        let x: Vec<Complex> = (0..32)
            .map(|_| Complex::from_real(g.f64(-10.0..10.0)))
            .collect();
        let y: Vec<Complex> = (0..32)
            .map(|_| Complex::from_real(g.f64(-10.0..10.0)))
            .collect();
        let c = g.f64(-5.0..5.0);
        let mut fx = x.clone();
        fft(&mut fx);
        let mut fy = y.clone();
        fft(&mut fy);
        let mut combined: Vec<Complex> = x.iter().zip(&y).map(|(a, b)| *a * c + *b).collect();
        fft(&mut combined);
        for i in 0..32 {
            let expect = fx[i] * c + fy[i];
            assert!((combined[i] - expect).abs() < 1e-8);
        }
    });
}

#[test]
fn convolution_is_commutative() {
    check(CASES, |g| {
        let a = g.vec_with(1..12, |g| g.f64(-5.0..5.0));
        let b = g.vec_with(1..12, |g| g.f64(-5.0..5.0));
        let ab = convolve(&a, &b);
        let ba = convolve(&b, &a);
        assert_eq!(ab.len(), ba.len());
        for (x, y) in ab.iter().zip(&ba) {
            assert!((x - y).abs() < 1e-10);
        }
    });
}

#[test]
fn convolution_preserves_total_mass() {
    check(CASES, |g| {
        let a = g.vec_with(1..10, |g| g.f64(0.0..5.0));
        let b = g.vec_with(1..10, |g| g.f64(0.0..5.0));
        let sa: f64 = a.iter().sum();
        let sb: f64 = b.iter().sum();
        let sc: f64 = convolve(&a, &b).iter().sum();
        assert!((sc - sa * sb).abs() < 1e-8 * (1.0 + sa * sb));
    });
}

#[test]
fn ln_gamma_satisfies_recurrence() {
    check(CASES, |g| {
        let x = g.f64(0.05..50.0);
        let lhs = ln_gamma(x + 1.0);
        let rhs = ln_gamma(x) + x.ln();
        assert!((lhs - rhs).abs() < 1e-10 * lhs.abs().max(1.0));
    });
}

#[test]
fn incomplete_gamma_complement() {
    check(CASES, |g| {
        let a = g.f64(0.1..50.0);
        let x = g.f64(0.0..100.0);
        let s = reg_gamma_lower(a, x) + reg_gamma_upper(a, x);
        assert!((s - 1.0).abs() < 1e-10);
    });
}

#[test]
fn incomplete_gamma_monotone_in_x() {
    check(CASES, |g| {
        let a = g.f64(0.1..20.0);
        let x = g.f64(0.0..50.0);
        let dx = g.f64(0.001..5.0);
        assert!(reg_gamma_lower(a, x + dx) >= reg_gamma_lower(a, x) - 1e-12);
    });
}

#[test]
fn kahan_matches_exact_on_integers() {
    check(CASES, |g| {
        let xs = g.vec_with(1..200, |g| g.i64(-1000..1000));
        let floats: Vec<f64> = xs.iter().map(|&x| x as f64).collect();
        let exact: i64 = xs.iter().sum();
        assert_eq!(kahan_sum(&floats), exact as f64);
        assert_eq!(kahan_sum(&[]), 0.0);
    });
}

#[test]
fn poly_derivative_at_matches_finite_difference() {
    check(CASES, |g| {
        let coeffs = g.vec_with(1..8, |g| g.f64(-3.0..3.0));
        let x = g.f64(-1.5..1.5);
        let p = Poly::new(coeffs);
        let (d1, _, _) = finite_derivatives(|t| p.eval(t), x, 1e-4);
        let exact = p.derivative_at(1, x);
        assert!((d1 - exact).abs() < 1e-5 * (1.0 + exact.abs()));
    });
}

#[test]
fn poly_mul_evaluates_as_product() {
    check(CASES, |g| {
        let a = g.vec_with(1..6, |g| g.f64(-2.0..2.0));
        let b = g.vec_with(1..6, |g| g.f64(-2.0..2.0));
        let x = g.f64(-1.0..1.0);
        let pa = Poly::new(a);
        let pb = Poly::new(b);
        let prod = pa.mul(&pb);
        assert!((prod.eval(x) - pa.eval(x) * pb.eval(x)).abs() < 1e-9);
    });
}

#[test]
fn brent_finds_root_of_shifted_cubic() {
    check(CASES, |g| {
        // f(x) = x³ + x − shift is strictly increasing with a unique root.
        let shift = g.f64(-10.0..10.0);
        let f = |x: f64| x * x * x + x - shift;
        let root = brent(f, -20.0, 20.0, 1e-12).unwrap();
        assert!(f(root).abs() < 1e-6);
    });
}

#[test]
fn binomial_symmetry() {
    check(CASES, |g| {
        let n = g.u64(0..60);
        let k = g.u64(0..60);
        if k > n {
            return;
        }
        let a = binomial(n, k);
        let b = binomial(n, n - k);
        assert!((a - b).abs() <= 1e-9 * a.max(1.0));
    });
}

#[test]
fn complex_field_axioms() {
    check(CASES, |g| {
        let a = Complex::new(g.f64(-10.0..10.0), g.f64(-10.0..10.0));
        let b = Complex::new(g.f64(-10.0..10.0), g.f64(-10.0..10.0));
        let c = Complex::new(g.f64(-10.0..10.0), g.f64(-10.0..10.0));
        // Distributivity.
        let lhs = a * (b + c);
        let rhs = a * b + a * c;
        assert!((lhs - rhs).abs() < 1e-9 * (1.0 + lhs.abs()));
        // |ab| = |a||b|.
        assert!(((a * b).abs() - a.abs() * b.abs()).abs() < 1e-9 * (1.0 + a.abs() * b.abs()));
    });
}
