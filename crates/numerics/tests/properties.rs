//! Property-based tests (proptest) for the numerical substrate.

use banyan_numerics::fft::{convolve, fft, ifft};
use banyan_numerics::poly::Poly;
use banyan_numerics::series::{finite_derivatives, kahan_sum};
use banyan_numerics::special::{binomial, ln_gamma, reg_gamma_lower, reg_gamma_upper};
use banyan_numerics::{brent, Complex};
use proptest::prelude::*;

proptest! {
    #[test]
    fn fft_round_trip_is_identity(
        re in prop::collection::vec(-100.0f64..100.0, 64),
        im in prop::collection::vec(-100.0f64..100.0, 64),
    ) {
        let orig: Vec<Complex> = re.iter().zip(&im).map(|(&r, &i)| Complex::new(r, i)).collect();
        let mut data = orig.clone();
        fft(&mut data);
        ifft(&mut data);
        for (a, b) in data.iter().zip(&orig) {
            prop_assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn fft_is_linear(
        xs in prop::collection::vec(-10.0f64..10.0, 32),
        ys in prop::collection::vec(-10.0f64..10.0, 32),
        c in -5.0f64..5.0,
    ) {
        let x: Vec<Complex> = xs.iter().map(|&v| Complex::from_real(v)).collect();
        let y: Vec<Complex> = ys.iter().map(|&v| Complex::from_real(v)).collect();
        let mut fx = x.clone();
        fft(&mut fx);
        let mut fy = y.clone();
        fft(&mut fy);
        let mut combined: Vec<Complex> = x.iter().zip(&y).map(|(a, b)| *a * c + *b).collect();
        fft(&mut combined);
        for i in 0..32 {
            let expect = fx[i] * c + fy[i];
            prop_assert!((combined[i] - expect).abs() < 1e-8);
        }
    }

    #[test]
    fn convolution_is_commutative(
        a in prop::collection::vec(-5.0f64..5.0, 1..12),
        b in prop::collection::vec(-5.0f64..5.0, 1..12),
    ) {
        let ab = convolve(&a, &b);
        let ba = convolve(&b, &a);
        prop_assert_eq!(ab.len(), ba.len());
        for (x, y) in ab.iter().zip(&ba) {
            prop_assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn convolution_preserves_total_mass(
        a in prop::collection::vec(0.0f64..5.0, 1..10),
        b in prop::collection::vec(0.0f64..5.0, 1..10),
    ) {
        let sa: f64 = a.iter().sum();
        let sb: f64 = b.iter().sum();
        let sc: f64 = convolve(&a, &b).iter().sum();
        prop_assert!((sc - sa * sb).abs() < 1e-8 * (1.0 + sa * sb));
    }

    #[test]
    fn ln_gamma_satisfies_recurrence(x in 0.05f64..50.0) {
        let lhs = ln_gamma(x + 1.0);
        let rhs = ln_gamma(x) + x.ln();
        prop_assert!((lhs - rhs).abs() < 1e-10 * lhs.abs().max(1.0));
    }

    #[test]
    fn incomplete_gamma_complement(a in 0.1f64..50.0, x in 0.0f64..100.0) {
        let s = reg_gamma_lower(a, x) + reg_gamma_upper(a, x);
        prop_assert!((s - 1.0).abs() < 1e-10);
    }

    #[test]
    fn incomplete_gamma_monotone_in_x(a in 0.1f64..20.0, x in 0.0f64..50.0, dx in 0.001f64..5.0) {
        prop_assert!(reg_gamma_lower(a, x + dx) >= reg_gamma_lower(a, x) - 1e-12);
    }

    #[test]
    fn kahan_matches_exact_on_integers(xs in prop::collection::vec(-1000i64..1000, 0..200)) {
        let floats: Vec<f64> = xs.iter().map(|&x| x as f64).collect();
        let exact: i64 = xs.iter().sum();
        prop_assert_eq!(kahan_sum(&floats), exact as f64);
    }

    #[test]
    fn poly_derivative_at_matches_finite_difference(
        coeffs in prop::collection::vec(-3.0f64..3.0, 1..8),
        x in -1.5f64..1.5,
    ) {
        let p = Poly::new(coeffs);
        let (d1, _, _) = finite_derivatives(|t| p.eval(t), x, 1e-4);
        let exact = p.derivative_at(1, x);
        prop_assert!((d1 - exact).abs() < 1e-5 * (1.0 + exact.abs()));
    }

    #[test]
    fn poly_mul_evaluates_as_product(
        a in prop::collection::vec(-2.0f64..2.0, 1..6),
        b in prop::collection::vec(-2.0f64..2.0, 1..6),
        x in -1.0f64..1.0,
    ) {
        let pa = Poly::new(a);
        let pb = Poly::new(b);
        let prod = pa.mul(&pb);
        prop_assert!((prod.eval(x) - pa.eval(x) * pb.eval(x)).abs() < 1e-9);
    }

    #[test]
    fn brent_finds_root_of_shifted_cubic(shift in -10.0f64..10.0) {
        // f(x) = x³ + x − shift is strictly increasing with a unique root.
        let f = |x: f64| x * x * x + x - shift;
        let root = brent(f, -20.0, 20.0, 1e-12).unwrap();
        prop_assert!(f(root).abs() < 1e-6);
    }

    #[test]
    fn binomial_symmetry(n in 0u64..60, k in 0u64..60) {
        prop_assume!(k <= n);
        let a = binomial(n, k);
        let b = binomial(n, n - k);
        prop_assert!((a - b).abs() <= 1e-9 * a.max(1.0));
    }

    #[test]
    fn complex_field_axioms(
        ar in -10.0f64..10.0, ai in -10.0f64..10.0,
        br in -10.0f64..10.0, bi in -10.0f64..10.0,
        cr in -10.0f64..10.0, ci in -10.0f64..10.0,
    ) {
        let a = Complex::new(ar, ai);
        let b = Complex::new(br, bi);
        let c = Complex::new(cr, ci);
        // Distributivity.
        let lhs = a * (b + c);
        let rhs = a * b + a * c;
        prop_assert!((lhs - rhs).abs() < 1e-9 * (1.0 + lhs.abs()));
        // |ab| = |a||b|.
        prop_assert!(((a * b).abs() - a.abs() * b.abs()).abs() < 1e-9 * (1.0 + a.abs() * b.abs()));
    }
}
