//! # banyan-numerics
//!
//! Self-contained numerical substrate for the Kruskal–Snir–Weiss
//! reproduction. The paper's analysis needs a handful of numerical tools
//! that are deliberately implemented here from scratch (no external numeric
//! crates are used):
//!
//! * [`complex`] — double-precision complex arithmetic,
//! * [`mod@fft`] — an iterative radix-2 fast Fourier transform, used to invert
//!   probability generating functions sampled on the unit circle,
//! * [`special`] — log-gamma and the regularized incomplete gamma function,
//!   used for the gamma approximation of the total waiting-time
//!   distribution (paper §V, Figs. 3–8),
//! * [`series`] — compensated (Kahan–Neumaier) summation and power-series
//!   helpers,
//! * [`poly`] — dense polynomial evaluation and differentiation,
//! * [`roots`] — bracketing root finders (bisection / Brent), used for tail
//!   exponents and inverse CDFs,
//! * [`quadrature`] — adaptive Simpson integration (sanity checks for
//!   densities).
//!
//! Everything is pure, deterministic, and tested against closed forms.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod complex;
pub mod fft;
pub mod poly;
pub mod quadrature;
pub mod roots;
pub mod series;
pub mod special;

pub use complex::Complex;
pub use fft::{convolve, fft, ifft, next_pow2, normalize_pmf};
pub use roots::{bisect, brent};
pub use series::{kahan_sum, KahanSum};
pub use special::{ln_beta, ln_gamma, reg_beta, reg_gamma_lower, reg_gamma_upper};
