//! Iterative radix-2 fast Fourier transform.
//!
//! The analysis crate recovers the full waiting-time probability mass
//! function by sampling the z-transform `t(z)` (paper Theorem 1) at the
//! `N`-th roots of unity and applying an inverse DFT: if
//! `t(z) = Σ_j P(w = j) z^j` and the mass beyond `N` is negligible, then
//!
//! ```text
//! P(w = j) ≈ (1/N) Σ_{l=0}^{N-1} t(e^{2πil/N}) e^{-2πilj/N}.
//! ```
//!
//! A plain radix-2 Cooley–Tukey transform is all that is required; input
//! lengths are always powers of two (see [`next_pow2`]).

use crate::complex::Complex;

/// Returns the smallest power of two `>= n` (and at least 1).
///
/// # Examples
/// ```
/// assert_eq!(banyan_numerics::next_pow2(0), 1);
/// assert_eq!(banyan_numerics::next_pow2(1), 1);
/// assert_eq!(banyan_numerics::next_pow2(5), 8);
/// assert_eq!(banyan_numerics::next_pow2(1024), 1024);
/// ```
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// In-place bit-reversal permutation.
fn bit_reverse_permute(data: &mut [Complex]) {
    let n = data.len();
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }
}

/// Core iterative Cooley–Tukey butterfly pass.
///
/// `sign` is `-1.0` for the forward transform (engineering convention
/// `X_k = Σ x_j e^{-2πijk/N}`) and `+1.0` for the inverse (before the `1/N`
/// normalization).
fn fft_in_place(data: &mut [Complex], sign: f64) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }
    bit_reverse_permute(data);
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(ang);
        for chunk in data.chunks_mut(len) {
            let mut w = Complex::ONE;
            let half = len / 2;
            for i in 0..half {
                let u = chunk[i];
                let v = chunk[i + half] * w;
                chunk[i] = u + v;
                chunk[i + half] = u - v;
                w *= wlen;
            }
        }
        len <<= 1;
    }
}

/// Forward DFT: `out[k] = Σ_j in[j]·e^{-2πijk/N}`.
///
/// The input length must be a power of two.
pub fn fft(data: &mut [Complex]) {
    fft_in_place(data, -1.0);
}

/// Inverse DFT: `out[j] = (1/N) Σ_k in[k]·e^{+2πijk/N}`.
///
/// `ifft(fft(x)) == x` up to rounding. The input length must be a power of
/// two.
pub fn ifft(data: &mut [Complex]) {
    fft_in_place(data, 1.0);
    let inv = 1.0 / data.len() as f64;
    for z in data.iter_mut() {
        *z = z.scale(inv);
    }
}

/// Recovers the coefficients `c_0..c_{n-1}` of a power series from samples
/// of the series at the `n`-th roots of unity.
///
/// `samples[l]` must equal `f(e^{2πil/n})` where `f(z) = Σ_j c_j z^j`. If
/// the true series extends beyond `n` terms, coefficient `j` absorbs the
/// aliased mass `Σ_r c_{j + rn}` — callers choose `n` large enough that the
/// tail is negligible (for waiting-time pmfs the tail decays
/// geometrically, so this converges fast).
pub fn coefficients_from_unit_circle(samples: &[Complex]) -> Vec<f64> {
    let mut buf = samples.to_vec();
    assert!(
        buf.len().is_power_of_two(),
        "sample count must be a power of two"
    );
    // Samples are at angles +2πl/n, so the coefficients come out of the
    // *forward* transform with the e^{-2πijl/n} kernel, normalized by 1/n.
    fft(&mut buf);
    let inv = 1.0 / buf.len() as f64;
    buf.iter().map(|z| z.re * inv).collect()
}

/// Convolves two real sequences exactly (direct summation).
///
/// Used for composing small pmfs in tests and for chaining per-hop
/// waiting-time distributions in the flow engine; `O(n·m)` but with no
/// rounding surprises. For the sizes used in this project this is fast
/// enough.
///
/// Edge cases: an empty operand yields an empty result (there is no
/// distribution to compose with), and a length-1 operand degenerates to
/// scaling — `convolve(&[c], b)` is `b` scaled by `c`, term for term.
pub fn convolve(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    // Length-1 fast paths: same arithmetic as the general loop (each
    // output is a single product), just without the zero-filled
    // accumulator pass.
    if a.len() == 1 {
        let c = a[0];
        return b.iter().map(|&y| c * y).collect();
    }
    if b.len() == 1 {
        let c = b[0];
        return a.iter().map(|&x| x * c).collect();
    }
    let mut out = vec![0.0; a.len() + b.len() - 1];
    for (i, &x) in a.iter().enumerate() {
        if x == 0.0 {
            continue;
        }
        for (j, &y) in b.iter().enumerate() {
            out[i + j] += x * y;
        }
    }
    out
}

/// Renormalizes a probability mass function whose total has drifted off
/// 1 by floating-point round-off (repeated FFT/convolution passes lose
/// a few ulps per stage).
///
/// The input must already be a pmf up to round-off: every entry above
/// `-1e-12` (tiny FFT undershoot is clamped to zero) and the total mass
/// within `1e-9` of 1 — anything further off is a modelling bug, not
/// round-off, and panics. After the call the entries sum to **exactly**
/// `1.0`: the slice is scaled by the observed total, then the final
/// entry is rewritten as the complement of its prefix sum, which pins
/// the plain left-to-right total to bit-exact 1 (the residual lands in
/// the smallest-mass tail entry, where it is representable — folding it
/// into the *largest* entry can fall below that entry's ulp and vanish).
///
/// # Panics
/// On an empty slice, an entry below `-1e-12`, or total mass outside
/// `1 ± 1e-9`.
pub fn normalize_pmf(pmf: &mut [f64]) {
    assert!(!pmf.is_empty(), "cannot normalize an empty pmf");
    for x in pmf.iter_mut() {
        assert!(
            *x > -1e-12,
            "pmf entry {x} is too negative to be FFT round-off"
        );
        if *x < 0.0 {
            *x = 0.0;
        }
    }
    let sum: f64 = pmf.iter().sum();
    assert!(
        (sum - 1.0).abs() <= 1e-9,
        "pmf mass {sum} drifted more than 1e-9 from 1 — not round-off"
    );
    let inv = 1.0 / sum;
    for x in pmf.iter_mut() {
        *x *= inv;
    }
    // Pin the plain left-to-right total to exactly 1.0: rewrite the
    // final entry as the complement of its prefix sum. For a prefix in
    // [½, 1] the complement is exact (Sterbenz); below ½ its rounding
    // error is under half an ulp of 1, so the closing addition still
    // rounds to bit-exact 1.0. If the complement comes out (ulp-scale)
    // negative, zero the entry and retry one slot to the left — the
    // prefix shrinks, so the loop terminates at index 0 at the latest
    // (empty prefix, complement 1.0).
    for i in (0..pmf.len()).rev() {
        let prefix: f64 = pmf[..i].iter().sum();
        let complement = 1.0 - prefix;
        if complement >= 0.0 {
            pmf[i] = complement;
            return;
        }
        pmf[i] = 0.0;
    }
    unreachable!("index 0 always has a non-negative complement");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!(
                (*x - *y).abs() <= tol,
                "mismatch: {x} vs {y} (tol {tol})"
            );
        }
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut data = vec![Complex::ZERO; 8];
        data[0] = Complex::ONE;
        fft(&mut data);
        for z in &data {
            assert!((*z - Complex::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn fft_of_constant_is_impulse() {
        let mut data = vec![Complex::ONE; 8];
        fft(&mut data);
        assert!((data[0] - Complex::from_real(8.0)).abs() < 1e-12);
        for z in &data[1..] {
            assert!(z.abs() < 1e-12);
        }
    }

    #[test]
    fn round_trip_random_like() {
        // Deterministic pseudo-random data (no RNG dependency here).
        let n = 64;
        let orig: Vec<Complex> = (0..n)
            .map(|i| {
                let x = ((i * 2654435761u64 as usize) % 1000) as f64 / 1000.0;
                let y = ((i * 40503 + 7) % 997) as f64 / 997.0;
                Complex::new(x - 0.5, y - 0.5)
            })
            .collect();
        let mut data = orig.clone();
        fft(&mut data);
        ifft(&mut data);
        assert_close(&data, &orig, 1e-12);
    }

    #[test]
    fn matches_naive_dft() {
        let n = 16;
        let orig: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.3).sin(), (i as f64 * 0.7).cos()))
            .collect();
        let mut fast = orig.clone();
        fft(&mut fast);
        let naive: Vec<Complex> = (0..n)
            .map(|k| {
                (0..n)
                    .map(|j| {
                        orig[j]
                            * Complex::cis(
                                -2.0 * std::f64::consts::PI * (j * k) as f64 / n as f64,
                            )
                    })
                    .sum()
            })
            .collect();
        assert_close(&fast, &naive, 1e-10);
    }

    #[test]
    fn parseval_energy_conservation() {
        let n = 32;
        let orig: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64).sin(), 0.25 * (i as f64).cos()))
            .collect();
        let time_energy: f64 = orig.iter().map(|z| z.norm_sqr()).sum();
        let mut freq = orig.clone();
        fft(&mut freq);
        let freq_energy: f64 = freq.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-10 * time_energy.max(1.0));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_length_panics() {
        let mut data = vec![Complex::ZERO; 12];
        fft(&mut data);
    }

    #[test]
    fn coefficient_recovery_of_polynomial() {
        // f(z) = 0.2 + 0.5 z + 0.3 z^3
        let coeffs = [0.2, 0.5, 0.0, 0.3];
        let n = 8usize;
        let samples: Vec<Complex> = (0..n)
            .map(|l| {
                let z = Complex::cis(2.0 * std::f64::consts::PI * l as f64 / n as f64);
                coeffs
                    .iter()
                    .enumerate()
                    .map(|(j, &c)| z.powi(j as i32) * c)
                    .sum()
            })
            .collect();
        let got = coefficients_from_unit_circle(&samples);
        for (j, &c) in coeffs.iter().enumerate() {
            assert!((got[j] - c).abs() < 1e-12, "coef {j}: {} vs {c}", got[j]);
        }
        for &g in &got[coeffs.len()..] {
            assert!(g.abs() < 1e-12);
        }
    }

    #[test]
    fn coefficient_recovery_of_geometric_series_aliases_tail() {
        // f(z) = (1-r) / (1 - r z) = Σ (1-r) r^j z^j with r = 0.5.
        let r: f64 = 0.5;
        let n = 64usize;
        let samples: Vec<Complex> = (0..n)
            .map(|l| {
                let z = Complex::cis(2.0 * std::f64::consts::PI * l as f64 / n as f64);
                Complex::from_real(1.0 - r) / (Complex::ONE - z * r)
            })
            .collect();
        let got = coefficients_from_unit_circle(&samples);
        // Aliased coefficient j = (1-r) r^j / (1 - r^n); with r^64 ~ 5e-20
        // the alias is invisible at f64 precision.
        for (j, &g) in got.iter().take(20).enumerate() {
            let want = (1.0 - r) * r.powi(j as i32);
            assert!((g - want).abs() < 1e-14, "coef {j}");
        }
    }

    #[test]
    fn convolve_matches_hand_example() {
        let a = [1.0, 2.0];
        let b = [3.0, 4.0, 5.0];
        assert_eq!(convolve(&a, &b), vec![3.0, 10.0, 13.0, 10.0]);
        assert!(convolve(&[], &b).is_empty());
    }

    #[test]
    fn convolve_edge_cases() {
        // Empty operands on either side (or both) give an empty result.
        assert!(convolve(&[1.0, 2.0], &[]).is_empty());
        assert!(convolve(&[], &[]).is_empty());
        // A length-1 operand is a pure scaling, from either side.
        assert_eq!(convolve(&[2.0], &[3.0, 4.0, 5.0]), vec![6.0, 8.0, 10.0]);
        assert_eq!(convolve(&[3.0, 4.0, 5.0], &[2.0]), vec![6.0, 8.0, 10.0]);
        // The point mass at zero is the convolution identity.
        let p = [0.25, 0.5, 0.25];
        assert_eq!(convolve(&[1.0], &p), p.to_vec());
        assert_eq!(convolve(&p, &[1.0]), p.to_vec());
        // Two length-1 sequences.
        assert_eq!(convolve(&[0.5], &[0.5]), vec![0.25]);
        // The fast paths agree with the general loop bit for bit.
        let q = [0.125, 0.5, 0.375];
        let general: Vec<f64> = {
            let mut out = vec![0.0; q.len()];
            for (j, &y) in q.iter().enumerate() {
                out[j] += 0.3 * y;
            }
            out
        };
        assert_eq!(convolve(&[0.3], &q), general);
    }

    #[test]
    fn normalize_pmf_restores_unit_mass_exactly() {
        // Accumulate round-off: a long geometric pmf scaled by a factor
        // a few ulps off 1.
        let drift = 1.0 + 3.0e-11;
        let mut pmf: Vec<f64> = (0..200)
            .map(|j| 0.5 * 0.5f64.powi(j) * drift)
            .collect();
        let before: f64 = pmf.iter().sum();
        assert!((before - 1.0).abs() > 1e-12, "test setup should drift");
        normalize_pmf(&mut pmf);
        let after: f64 = pmf.iter().sum();
        assert_eq!(after.to_bits(), 1.0f64.to_bits());
        // Shape is preserved: ratios stay geometric.
        assert!((pmf[1] / pmf[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn normalize_pmf_clamps_fft_undershoot() {
        let mut pmf = vec![0.6, 0.4 + 1e-13, -1e-13];
        normalize_pmf(&mut pmf);
        assert_eq!(pmf[2], 0.0);
        let total: f64 = pmf.iter().sum();
        assert_eq!(total, 1.0);
    }

    #[test]
    fn normalize_pmf_is_identity_on_exact_input() {
        let mut pmf = vec![0.25, 0.5, 0.25];
        normalize_pmf(&mut pmf);
        assert_eq!(pmf, vec![0.25, 0.5, 0.25]);
        let mut single = vec![1.0 + 2e-10];
        normalize_pmf(&mut single);
        assert_eq!(single, vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "drifted more than 1e-9")]
    fn normalize_pmf_rejects_real_mass_loss() {
        let mut pmf = vec![0.5, 0.4];
        normalize_pmf(&mut pmf);
    }

    #[test]
    #[should_panic(expected = "empty pmf")]
    fn normalize_pmf_rejects_empty() {
        let mut pmf: Vec<f64> = Vec::new();
        normalize_pmf(&mut pmf);
    }

    #[test]
    fn convolution_of_pmfs_sums_to_one() {
        let a = [0.25, 0.5, 0.25];
        let b = [0.1, 0.9];
        let c = convolve(&a, &b);
        let s: f64 = c.iter().sum();
        assert!((s - 1.0).abs() < 1e-15);
    }
}
