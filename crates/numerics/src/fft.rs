//! Iterative radix-2 fast Fourier transform.
//!
//! The analysis crate recovers the full waiting-time probability mass
//! function by sampling the z-transform `t(z)` (paper Theorem 1) at the
//! `N`-th roots of unity and applying an inverse DFT: if
//! `t(z) = Σ_j P(w = j) z^j` and the mass beyond `N` is negligible, then
//!
//! ```text
//! P(w = j) ≈ (1/N) Σ_{l=0}^{N-1} t(e^{2πil/N}) e^{-2πilj/N}.
//! ```
//!
//! A plain radix-2 Cooley–Tukey transform is all that is required; input
//! lengths are always powers of two (see [`next_pow2`]).

use crate::complex::Complex;

/// Returns the smallest power of two `>= n` (and at least 1).
///
/// # Examples
/// ```
/// assert_eq!(banyan_numerics::next_pow2(0), 1);
/// assert_eq!(banyan_numerics::next_pow2(1), 1);
/// assert_eq!(banyan_numerics::next_pow2(5), 8);
/// assert_eq!(banyan_numerics::next_pow2(1024), 1024);
/// ```
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// In-place bit-reversal permutation.
fn bit_reverse_permute(data: &mut [Complex]) {
    let n = data.len();
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }
}

/// Core iterative Cooley–Tukey butterfly pass.
///
/// `sign` is `-1.0` for the forward transform (engineering convention
/// `X_k = Σ x_j e^{-2πijk/N}`) and `+1.0` for the inverse (before the `1/N`
/// normalization).
fn fft_in_place(data: &mut [Complex], sign: f64) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }
    bit_reverse_permute(data);
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(ang);
        for chunk in data.chunks_mut(len) {
            let mut w = Complex::ONE;
            let half = len / 2;
            for i in 0..half {
                let u = chunk[i];
                let v = chunk[i + half] * w;
                chunk[i] = u + v;
                chunk[i + half] = u - v;
                w *= wlen;
            }
        }
        len <<= 1;
    }
}

/// Forward DFT: `out[k] = Σ_j in[j]·e^{-2πijk/N}`.
///
/// The input length must be a power of two.
pub fn fft(data: &mut [Complex]) {
    fft_in_place(data, -1.0);
}

/// Inverse DFT: `out[j] = (1/N) Σ_k in[k]·e^{+2πijk/N}`.
///
/// `ifft(fft(x)) == x` up to rounding. The input length must be a power of
/// two.
pub fn ifft(data: &mut [Complex]) {
    fft_in_place(data, 1.0);
    let inv = 1.0 / data.len() as f64;
    for z in data.iter_mut() {
        *z = z.scale(inv);
    }
}

/// Recovers the coefficients `c_0..c_{n-1}` of a power series from samples
/// of the series at the `n`-th roots of unity.
///
/// `samples[l]` must equal `f(e^{2πil/n})` where `f(z) = Σ_j c_j z^j`. If
/// the true series extends beyond `n` terms, coefficient `j` absorbs the
/// aliased mass `Σ_r c_{j + rn}` — callers choose `n` large enough that the
/// tail is negligible (for waiting-time pmfs the tail decays
/// geometrically, so this converges fast).
pub fn coefficients_from_unit_circle(samples: &[Complex]) -> Vec<f64> {
    let mut buf = samples.to_vec();
    assert!(
        buf.len().is_power_of_two(),
        "sample count must be a power of two"
    );
    // Samples are at angles +2πl/n, so the coefficients come out of the
    // *forward* transform with the e^{-2πijl/n} kernel, normalized by 1/n.
    fft(&mut buf);
    let inv = 1.0 / buf.len() as f64;
    buf.iter().map(|z| z.re * inv).collect()
}

/// Convolves two real sequences exactly (direct summation).
///
/// Used for composing small pmfs in tests; `O(n·m)` but with no rounding
/// surprises. For the sizes used in this project this is fast enough.
pub fn convolve(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0.0; a.len() + b.len() - 1];
    for (i, &x) in a.iter().enumerate() {
        if x == 0.0 {
            continue;
        }
        for (j, &y) in b.iter().enumerate() {
            out[i + j] += x * y;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!(
                (*x - *y).abs() <= tol,
                "mismatch: {x} vs {y} (tol {tol})"
            );
        }
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut data = vec![Complex::ZERO; 8];
        data[0] = Complex::ONE;
        fft(&mut data);
        for z in &data {
            assert!((*z - Complex::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn fft_of_constant_is_impulse() {
        let mut data = vec![Complex::ONE; 8];
        fft(&mut data);
        assert!((data[0] - Complex::from_real(8.0)).abs() < 1e-12);
        for z in &data[1..] {
            assert!(z.abs() < 1e-12);
        }
    }

    #[test]
    fn round_trip_random_like() {
        // Deterministic pseudo-random data (no RNG dependency here).
        let n = 64;
        let orig: Vec<Complex> = (0..n)
            .map(|i| {
                let x = ((i * 2654435761u64 as usize) % 1000) as f64 / 1000.0;
                let y = ((i * 40503 + 7) % 997) as f64 / 997.0;
                Complex::new(x - 0.5, y - 0.5)
            })
            .collect();
        let mut data = orig.clone();
        fft(&mut data);
        ifft(&mut data);
        assert_close(&data, &orig, 1e-12);
    }

    #[test]
    fn matches_naive_dft() {
        let n = 16;
        let orig: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.3).sin(), (i as f64 * 0.7).cos()))
            .collect();
        let mut fast = orig.clone();
        fft(&mut fast);
        let naive: Vec<Complex> = (0..n)
            .map(|k| {
                (0..n)
                    .map(|j| {
                        orig[j]
                            * Complex::cis(
                                -2.0 * std::f64::consts::PI * (j * k) as f64 / n as f64,
                            )
                    })
                    .sum()
            })
            .collect();
        assert_close(&fast, &naive, 1e-10);
    }

    #[test]
    fn parseval_energy_conservation() {
        let n = 32;
        let orig: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64).sin(), 0.25 * (i as f64).cos()))
            .collect();
        let time_energy: f64 = orig.iter().map(|z| z.norm_sqr()).sum();
        let mut freq = orig.clone();
        fft(&mut freq);
        let freq_energy: f64 = freq.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-10 * time_energy.max(1.0));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_length_panics() {
        let mut data = vec![Complex::ZERO; 12];
        fft(&mut data);
    }

    #[test]
    fn coefficient_recovery_of_polynomial() {
        // f(z) = 0.2 + 0.5 z + 0.3 z^3
        let coeffs = [0.2, 0.5, 0.0, 0.3];
        let n = 8usize;
        let samples: Vec<Complex> = (0..n)
            .map(|l| {
                let z = Complex::cis(2.0 * std::f64::consts::PI * l as f64 / n as f64);
                coeffs
                    .iter()
                    .enumerate()
                    .map(|(j, &c)| z.powi(j as i32) * c)
                    .sum()
            })
            .collect();
        let got = coefficients_from_unit_circle(&samples);
        for (j, &c) in coeffs.iter().enumerate() {
            assert!((got[j] - c).abs() < 1e-12, "coef {j}: {} vs {c}", got[j]);
        }
        for &g in &got[coeffs.len()..] {
            assert!(g.abs() < 1e-12);
        }
    }

    #[test]
    fn coefficient_recovery_of_geometric_series_aliases_tail() {
        // f(z) = (1-r) / (1 - r z) = Σ (1-r) r^j z^j with r = 0.5.
        let r: f64 = 0.5;
        let n = 64usize;
        let samples: Vec<Complex> = (0..n)
            .map(|l| {
                let z = Complex::cis(2.0 * std::f64::consts::PI * l as f64 / n as f64);
                Complex::from_real(1.0 - r) / (Complex::ONE - z * r)
            })
            .collect();
        let got = coefficients_from_unit_circle(&samples);
        // Aliased coefficient j = (1-r) r^j / (1 - r^n); with r^64 ~ 5e-20
        // the alias is invisible at f64 precision.
        for (j, &g) in got.iter().take(20).enumerate() {
            let want = (1.0 - r) * r.powi(j as i32);
            assert!((g - want).abs() < 1e-14, "coef {j}");
        }
    }

    #[test]
    fn convolve_matches_hand_example() {
        let a = [1.0, 2.0];
        let b = [3.0, 4.0, 5.0];
        assert_eq!(convolve(&a, &b), vec![3.0, 10.0, 13.0, 10.0]);
        assert!(convolve(&[], &b).is_empty());
    }

    #[test]
    fn convolution_of_pmfs_sums_to_one() {
        let a = [0.25, 0.5, 0.25];
        let b = [0.1, 0.9];
        let c = convolve(&a, &b);
        let s: f64 = c.iter().sum();
        assert!((s - 1.0).abs() < 1e-15);
    }
}
