//! Bracketing root finders.
//!
//! Used for: inverse CDF of the gamma approximation (quantiles of the total
//! waiting time), and locating the dominant real singularity of the
//! waiting-time transform `t(z)` — the smallest root of `R(U(z)) = z`
//! beyond `z = 1` — which gives the geometric decay rate of the
//! waiting-time tail ("typically in queueing systems, the distribution of
//! waiting times has an exponential or geometric tail", paper §V).

/// Error conditions for the root finders.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RootError {
    /// `f(a)` and `f(b)` have the same sign — no bracket.
    NoBracket,
    /// Iteration budget exhausted before the tolerance was met.
    NoConvergence,
}

impl std::fmt::Display for RootError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RootError::NoBracket => write!(f, "f(a) and f(b) have the same sign"),
            RootError::NoConvergence => write!(f, "root finder did not converge"),
        }
    }
}

impl std::error::Error for RootError {}

/// Plain bisection on `[a, b]`; requires a sign change.
///
/// Converges unconditionally; ~50 iterations reach `f64` resolution on any
/// reasonable interval.
pub fn bisect<F: FnMut(f64) -> f64>(
    mut f: F,
    mut a: f64,
    mut b: f64,
    tol: f64,
) -> Result<f64, RootError> {
    let mut fa = f(a);
    let fb = f(b);
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.signum() == fb.signum() {
        return Err(RootError::NoBracket);
    }
    for _ in 0..200 {
        let mid = 0.5 * (a + b);
        let fm = f(mid);
        if fm == 0.0 || (b - a).abs() <= tol {
            return Ok(mid);
        }
        if fm.signum() == fa.signum() {
            a = mid;
            fa = fm;
        } else {
            b = mid;
        }
    }
    Err(RootError::NoConvergence)
}

/// Brent's method: inverse-quadratic / secant steps with a bisection
/// safety net. Superlinear in practice, never worse than bisection.
pub fn brent<F: FnMut(f64) -> f64>(
    mut f: F,
    mut a: f64,
    mut b: f64,
    tol: f64,
) -> Result<f64, RootError> {
    let mut fa = f(a);
    let mut fb = f(b);
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.signum() == fb.signum() {
        return Err(RootError::NoBracket);
    }
    if fa.abs() < fb.abs() {
        std::mem::swap(&mut a, &mut b);
        std::mem::swap(&mut fa, &mut fb);
    }
    let mut c = a;
    let mut fc = fa;
    let mut d = b - a;
    let mut mflag = true;
    for _ in 0..200 {
        if fb == 0.0 || (b - a).abs() <= tol {
            return Ok(b);
        }
        let mut s = if fa != fc && fb != fc {
            // Inverse quadratic interpolation.
            a * fb * fc / ((fa - fb) * (fa - fc))
                + b * fa * fc / ((fb - fa) * (fb - fc))
                + c * fa * fb / ((fc - fa) * (fc - fb))
        } else {
            // Secant.
            b - fb * (b - a) / (fb - fa)
        };
        let lo = (3.0 * a + b) / 4.0;
        let cond = !((lo.min(b) < s && s < lo.max(b))
            && if mflag {
                (s - b).abs() < 0.5 * (b - c).abs()
            } else {
                (s - b).abs() < 0.5 * (c - d).abs()
            });
        if cond {
            s = 0.5 * (a + b);
            mflag = true;
        } else {
            mflag = false;
        }
        let fs = f(s);
        d = c;
        c = b;
        fc = fb;
        if fa.signum() != fs.signum() {
            b = s;
            fb = fs;
        } else {
            a = s;
            fa = fs;
        }
        if fa.abs() < fb.abs() {
            std::mem::swap(&mut a, &mut b);
            std::mem::swap(&mut fa, &mut fb);
        }
    }
    Err(RootError::NoConvergence)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_finds_sqrt2() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12).unwrap();
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-11);
    }

    #[test]
    fn bisect_exact_endpoint() {
        assert_eq!(bisect(|x| x, 0.0, 1.0, 1e-12).unwrap(), 0.0);
        assert_eq!(bisect(|x| x - 1.0, 0.0, 1.0, 1e-12).unwrap(), 1.0);
    }

    #[test]
    fn bisect_no_bracket() {
        assert_eq!(
            bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-12),
            Err(RootError::NoBracket)
        );
    }

    #[test]
    fn brent_finds_sqrt2_fast() {
        let mut calls = 0;
        let r = brent(
            |x| {
                calls += 1;
                x * x - 2.0
            },
            0.0,
            2.0,
            1e-14,
        )
        .unwrap();
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-12);
        // Far fewer evaluations than bisection would need for 1e-14 width.
        assert!(calls < 60, "brent used {calls} evaluations");
    }

    #[test]
    fn brent_handles_flat_then_steep() {
        // Root of x^9 near zero: hard for pure secant, fine for Brent.
        let r = brent(|x| x.powi(9) - 0.5, 0.0, 2.0, 1e-13).unwrap();
        assert!((r - 0.5f64.powf(1.0 / 9.0)).abs() < 1e-10);
    }

    #[test]
    fn brent_no_bracket() {
        assert_eq!(
            brent(|x| x * x + 1.0, -3.0, 3.0, 1e-12),
            Err(RootError::NoBracket)
        );
    }

    #[test]
    fn brent_transcendental() {
        // x = cos x  →  0.7390851332151607
        let r = brent(|x| x - x.cos(), 0.0, 1.0, 1e-14).unwrap();
        assert!((r - 0.739_085_133_215_160_7).abs() < 1e-12);
    }

    #[test]
    fn error_display() {
        assert!(RootError::NoBracket.to_string().contains("same sign"));
        assert!(RootError::NoConvergence.to_string().contains("converge"));
    }
}
