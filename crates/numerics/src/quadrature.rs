//! Adaptive Simpson quadrature.
//!
//! Used in tests and sanity checks: integrating the gamma density must
//! reproduce the incomplete-gamma CDF, and integrating fitted densities
//! over histogram bins converts continuous approximations into discrete
//! bin probabilities for the figure reproductions.

/// Adaptive Simpson integration of `f` over `[a, b]` to absolute tolerance
/// `tol`.
///
/// The recursion depth is capped at 50, which is unreachable for the smooth
/// densities integrated in this project.
pub fn integrate<F: Fn(f64) -> f64>(f: &F, a: f64, b: f64, tol: f64) -> f64 {
    if a == b {
        return 0.0;
    }
    let fa = f(a);
    let fb = f(b);
    let m = 0.5 * (a + b);
    let fm = f(m);
    let whole = simpson(a, b, fa, fm, fb);
    adaptive(f, a, b, fa, fm, fb, whole, tol, 50)
}

fn simpson(a: f64, b: f64, fa: f64, fm: f64, fb: f64) -> f64 {
    (b - a) / 6.0 * (fa + 4.0 * fm + fb)
}

#[allow(clippy::too_many_arguments)]
fn adaptive<F: Fn(f64) -> f64>(
    f: &F,
    a: f64,
    b: f64,
    fa: f64,
    fm: f64,
    fb: f64,
    whole: f64,
    tol: f64,
    depth: u32,
) -> f64 {
    let m = 0.5 * (a + b);
    let lm = 0.5 * (a + m);
    let rm = 0.5 * (m + b);
    let flm = f(lm);
    let frm = f(rm);
    let left = simpson(a, m, fa, flm, fm);
    let right = simpson(m, b, fm, frm, fb);
    let delta = left + right - whole;
    if depth == 0 || delta.abs() <= 15.0 * tol {
        left + right + delta / 15.0
    } else {
        adaptive(f, a, m, fa, flm, fm, left, 0.5 * tol, depth - 1)
            + adaptive(f, m, b, fm, frm, fb, right, 0.5 * tol, depth - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integrates_polynomial_exactly() {
        // ∫₀¹ x² dx = 1/3 (Simpson is exact on cubics).
        let v = integrate(&|x| x * x, 0.0, 1.0, 1e-12);
        assert!((v - 1.0 / 3.0).abs() < 1e-14);
    }

    #[test]
    fn integrates_sine() {
        let v = integrate(&|x: f64| x.sin(), 0.0, std::f64::consts::PI, 1e-12);
        assert!((v - 2.0).abs() < 1e-10);
    }

    #[test]
    fn empty_interval_is_zero() {
        assert_eq!(integrate(&|x| x, 2.0, 2.0, 1e-12), 0.0);
    }

    #[test]
    fn reversed_interval_is_negated() {
        let fwd = integrate(&|x| x * x, 0.0, 2.0, 1e-12);
        let bwd = integrate(&|x| x * x, 2.0, 0.0, 1e-12);
        assert!((fwd + bwd).abs() < 1e-12);
    }

    #[test]
    fn handles_peaked_integrand() {
        // ∫_{-8}^{8} e^{-x²} dx = √π (to 1e-10).
        let v = integrate(&|x: f64| (-x * x).exp(), -8.0, 8.0, 1e-12);
        assert!((v - std::f64::consts::PI.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn gamma_density_integrates_to_cdf() {
        use crate::special::{ln_gamma, reg_gamma_lower};
        let shape = 3.7;
        let pdf = move |x: f64| {
            ((shape - 1.0) * x.ln() - x - ln_gamma(shape)).exp()
        };
        let x0 = 5.0;
        let v = integrate(&pdf, 1e-12, x0, 1e-12);
        assert!((v - reg_gamma_lower(shape, x0)).abs() < 1e-8);
    }
}
