//! Compensated summation and power-series helpers.
//!
//! Waiting-time pmfs and their moments involve sums of thousands of small
//! terms of mixed magnitude; Kahan–Neumaier compensated summation keeps the
//! accumulated rounding error at one ulp instead of `O(n)` ulps.

/// Streaming Kahan–Neumaier compensated accumulator.
///
/// # Examples
/// ```
/// use banyan_numerics::KahanSum;
/// let mut acc = KahanSum::new();
/// for _ in 0..10 { acc.add(0.1); }
/// assert!((acc.sum() - 1.0).abs() < 1e-15);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct KahanSum {
    sum: f64,
    comp: f64,
}

impl KahanSum {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one term.
    #[inline]
    pub fn add(&mut self, x: f64) {
        let t = self.sum + x;
        if self.sum.abs() >= x.abs() {
            self.comp += (self.sum - t) + x;
        } else {
            self.comp += (x - t) + self.sum;
        }
        self.sum = t;
    }

    /// Current compensated total.
    #[inline]
    pub fn sum(&self) -> f64 {
        self.sum + self.comp
    }
}

impl Extend<f64> for KahanSum {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.add(x);
        }
    }
}

/// Compensated sum of a slice.
pub fn kahan_sum(xs: &[f64]) -> f64 {
    let mut acc = KahanSum::new();
    for &x in xs {
        acc.add(x);
    }
    acc.sum()
}

/// Factorial moments `E[X]`, `E[X(X−1)]`, `E[X(X−1)(X−2)]` of a pmf given
/// as `pmf[j] = P(X = j)`.
///
/// These are exactly the derivatives `G'(1)`, `G''(1)`, `G'''(1)` of the
/// generating function `G(z) = Σ pmf[j] z^j`, which is the currency of the
/// paper's Theorem 1 (Eqs. 2–3 consume `R''(1)`, `R'''(1)`, `U''(1)`,
/// `U'''(1)`).
pub fn factorial_moments(pmf: &[f64]) -> (f64, f64, f64) {
    let mut m1 = KahanSum::new();
    let mut m2 = KahanSum::new();
    let mut m3 = KahanSum::new();
    for (j, &p) in pmf.iter().enumerate() {
        let j = j as f64;
        m1.add(j * p);
        m2.add(j * (j - 1.0) * p);
        m3.add(j * (j - 1.0) * (j - 2.0) * p);
    }
    (m1.sum(), m2.sum(), m3.sum())
}

/// Mean and variance of a pmf `pmf[j] = P(X = j)`.
pub fn pmf_mean_var(pmf: &[f64]) -> (f64, f64) {
    let (m1, m2, _) = factorial_moments(pmf);
    (m1, m2 + m1 - m1 * m1)
}

/// Normalizes a nonnegative sequence to sum to one.
///
/// Returns `None` when the total mass is zero or not finite.
pub fn normalize(pmf: &mut [f64]) -> Option<f64> {
    let total = kahan_sum(pmf);
    if !(total.is_finite() && total > 0.0) {
        return None;
    }
    for p in pmf.iter_mut() {
        *p /= total;
    }
    Some(total)
}

/// Central finite-difference estimates of the first three derivatives of
/// `f` at `x`, with step `h` (five-point stencils).
///
/// Used to cross-check the paper's closed-form derivative expressions
/// (Eqs. 2–3 came out of "six applications of L'Hospital's rule" and an
/// all-night Macsyma run — we verify our transcription numerically).
pub fn finite_derivatives<F: Fn(f64) -> f64>(f: F, x: f64, h: f64) -> (f64, f64, f64) {
    let fm2 = f(x - 2.0 * h);
    let fm1 = f(x - h);
    let f0 = f(x);
    let fp1 = f(x + h);
    let fp2 = f(x + 2.0 * h);
    let d1 = (fm2 - 8.0 * fm1 + 8.0 * fp1 - fp2) / (12.0 * h);
    let d2 = (-fm2 + 16.0 * fm1 - 30.0 * f0 + 16.0 * fp1 - fp2) / (12.0 * h * h);
    let d3 = (-fm2 + 2.0 * fm1 - 2.0 * fp1 + fp2) / (2.0 * h * h * h);
    (d1, d2, d3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kahan_beats_naive_on_adversarial_input() {
        // 1 + 1e-16 added 10^6 times: naive summation loses all the small
        // terms; Kahan keeps them.
        let mut acc = KahanSum::new();
        acc.add(1.0);
        for _ in 0..1_000_000 {
            acc.add(1e-16);
        }
        let want = 1.0 + 1e-10;
        assert!((acc.sum() - want).abs() < 1e-24, "{}", acc.sum());
    }

    #[test]
    fn kahan_extend_and_slice_agree() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.618).sin()).collect();
        let mut acc = KahanSum::new();
        acc.extend(xs.iter().copied());
        assert_eq!(acc.sum(), kahan_sum(&xs));
    }

    #[test]
    fn factorial_moments_of_bernoulli() {
        // X ~ Bernoulli(0.3): E X = 0.3, E X(X-1) = 0, E X(X-1)(X-2) = 0.
        let (m1, m2, m3) = factorial_moments(&[0.7, 0.3]);
        assert!((m1 - 0.3).abs() < 1e-15);
        assert!(m2.abs() < 1e-15);
        assert!(m3.abs() < 1e-15);
    }

    #[test]
    fn factorial_moments_of_binomial() {
        // Binomial(n=4, p=0.5): E X(X-1) = n(n-1)p² = 3, E X(X-1)(X-2) = n(n-1)(n-2)p³ = 3.
        let pmf = [0.0625, 0.25, 0.375, 0.25, 0.0625];
        let (m1, m2, m3) = factorial_moments(&pmf);
        assert!((m1 - 2.0).abs() < 1e-14);
        assert!((m2 - 3.0).abs() < 1e-14);
        assert!((m3 - 3.0).abs() < 1e-14);
    }

    #[test]
    fn pmf_mean_var_of_uniform_die() {
        let pmf = [0.0, 1.0 / 6.0, 1.0 / 6.0, 1.0 / 6.0, 1.0 / 6.0, 1.0 / 6.0, 1.0 / 6.0];
        let (m, v) = pmf_mean_var(&pmf);
        assert!((m - 3.5).abs() < 1e-14);
        assert!((v - 35.0 / 12.0).abs() < 1e-13);
    }

    #[test]
    fn normalize_scales_to_unity() {
        let mut p = vec![1.0, 2.0, 1.0];
        let total = normalize(&mut p).unwrap();
        assert!((total - 4.0).abs() < 1e-15);
        assert_eq!(p, vec![0.25, 0.5, 0.25]);
    }

    #[test]
    fn normalize_rejects_zero_mass() {
        let mut p = vec![0.0, 0.0];
        assert!(normalize(&mut p).is_none());
        let mut q = vec![f64::NAN];
        assert!(normalize(&mut q).is_none());
    }

    #[test]
    fn finite_derivatives_of_exp() {
        let (d1, d2, d3) = finite_derivatives(|x| x.exp(), 0.4, 1e-3);
        let e = 0.4f64.exp();
        assert!((d1 - e).abs() < 1e-9);
        assert!((d2 - e).abs() < 1e-6);
        assert!((d3 - e).abs() < 1e-4);
    }

    #[test]
    fn finite_derivatives_of_cubic_are_exact() {
        // f = x³: f' = 3x², f'' = 6x, f''' = 6 — stencils are exact on cubics.
        let (d1, d2, d3) = finite_derivatives(|x| x * x * x, 2.0, 1e-2);
        assert!((d1 - 12.0).abs() < 1e-9);
        assert!((d2 - 12.0).abs() < 1e-7);
        assert!((d3 - 6.0).abs() < 1e-7);
    }
}
