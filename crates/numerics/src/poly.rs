//! Dense real polynomials.
//!
//! Generating functions of bounded discrete distributions (batch-size pmfs,
//! service-time pmfs with finitely many sizes) are polynomials; this module
//! provides the evaluation and differentiation used by the analysis crate,
//! for both real and complex arguments.

use crate::complex::Complex;

/// A dense polynomial `c[0] + c[1] x + … + c[n] x^n` over `f64`.
#[derive(Clone, Debug, PartialEq)]
pub struct Poly {
    coeffs: Vec<f64>,
}

impl Poly {
    /// Builds a polynomial from coefficients in ascending-degree order.
    /// Trailing zeros are trimmed (the zero polynomial keeps one 0 term).
    pub fn new(mut coeffs: Vec<f64>) -> Self {
        while coeffs.len() > 1 && coeffs.last() == Some(&0.0) {
            coeffs.pop();
        }
        if coeffs.is_empty() {
            coeffs.push(0.0);
        }
        Poly { coeffs }
    }

    /// The coefficients, ascending degree.
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Degree (0 for constants, including the zero polynomial).
    pub fn degree(&self) -> usize {
        self.coeffs.len() - 1
    }

    /// Horner evaluation at a real point.
    pub fn eval(&self, x: f64) -> f64 {
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
    }

    /// Horner evaluation at a complex point.
    pub fn eval_complex(&self, z: Complex) -> Complex {
        self.coeffs
            .iter()
            .rev()
            .fold(Complex::ZERO, |acc, &c| acc * z + c)
    }

    /// Formal derivative.
    pub fn derivative(&self) -> Poly {
        if self.coeffs.len() <= 1 {
            return Poly::new(vec![0.0]);
        }
        Poly::new(
            self.coeffs
                .iter()
                .enumerate()
                .skip(1)
                .map(|(i, &c)| i as f64 * c)
                .collect(),
        )
    }

    /// `r`-th derivative evaluated at `x` (direct falling-factorial form,
    /// no intermediate allocations).
    pub fn derivative_at(&self, r: u32, x: f64) -> f64 {
        let mut sum = 0.0;
        for (j, &c) in self.coeffs.iter().enumerate().skip(r as usize) {
            let mut ff = 1.0;
            for t in 0..r as usize {
                ff *= (j - t) as f64;
            }
            sum += c * ff * x.powi((j - r as usize) as i32);
        }
        sum
    }

    /// Product of two polynomials.
    pub fn mul(&self, other: &Poly) -> Poly {
        Poly::new(crate::fft::convolve(&self.coeffs, other.coeffs()))
    }

    /// Integer power by repeated multiplication.
    pub fn powi(&self, n: u32) -> Poly {
        let mut acc = Poly::new(vec![1.0]);
        for _ in 0..n {
            acc = acc.mul(self);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_horner_matches_direct() {
        let p = Poly::new(vec![1.0, -2.0, 0.5, 3.0]);
        for &x in &[-2.0, -0.3, 0.0, 0.7, 1.0, 4.2] {
            let direct = 1.0 - 2.0 * x + 0.5 * x * x + 3.0 * x * x * x;
            assert!((p.eval(x) - direct).abs() < 1e-12 * direct.abs().max(1.0));
        }
    }

    #[test]
    fn trailing_zeros_trimmed() {
        let p = Poly::new(vec![1.0, 2.0, 0.0, 0.0]);
        assert_eq!(p.degree(), 1);
        let z = Poly::new(vec![]);
        assert_eq!(z.degree(), 0);
        assert_eq!(z.eval(3.0), 0.0);
    }

    #[test]
    fn derivative_basics() {
        // d/dx (1 + 2x + 3x²) = 2 + 6x
        let p = Poly::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(p.derivative(), Poly::new(vec![2.0, 6.0]));
        assert_eq!(Poly::new(vec![5.0]).derivative(), Poly::new(vec![0.0]));
    }

    #[test]
    fn derivative_at_matches_chained_derivatives() {
        let p = Poly::new(vec![0.3, 0.1, 0.0, 0.4, 0.2]);
        let d1 = p.derivative();
        let d2 = d1.derivative();
        let d3 = d2.derivative();
        for &x in &[0.0, 0.5, 1.0, 1.5] {
            assert!((p.derivative_at(0, x) - p.eval(x)).abs() < 1e-13);
            assert!((p.derivative_at(1, x) - d1.eval(x)).abs() < 1e-13);
            assert!((p.derivative_at(2, x) - d2.eval(x)).abs() < 1e-13);
            assert!((p.derivative_at(3, x) - d3.eval(x)).abs() < 1e-13);
        }
    }

    #[test]
    fn complex_eval_consistent_with_real() {
        let p = Poly::new(vec![0.2, 0.3, 0.5]);
        let zr = p.eval_complex(Complex::from_real(0.8));
        assert!((zr.re - p.eval(0.8)).abs() < 1e-14);
        assert!(zr.im.abs() < 1e-14);
    }

    #[test]
    fn pgf_property_eval_at_one() {
        // A pmf-polynomial evaluates to 1 at z = 1.
        let p = Poly::new(vec![0.1, 0.2, 0.3, 0.4]);
        assert!((p.eval(1.0) - 1.0).abs() < 1e-15);
        // And its derivative at 1 is the mean.
        assert!((p.derivative_at(1, 1.0) - (0.2 + 0.6 + 1.2)).abs() < 1e-15);
    }

    #[test]
    fn mul_and_powi() {
        // (1 + x)² = 1 + 2x + x²
        let p = Poly::new(vec![1.0, 1.0]);
        assert_eq!(p.powi(2), Poly::new(vec![1.0, 2.0, 1.0]));
        assert_eq!(p.powi(0), Poly::new(vec![1.0]));
        let q = Poly::new(vec![0.0, 1.0]);
        assert_eq!(p.mul(&q), Poly::new(vec![0.0, 1.0, 1.0]));
    }
}
