//! Minimal double-precision complex arithmetic.
//!
//! Only the operations needed by the FFT and by generating-function
//! evaluation on the unit circle are provided. The type is `Copy`, always
//! finite-friendly, and has no external dependencies.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number `re + i·im` with `f64` components.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit `i`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular coordinates.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates `r·e^{iθ}` from polar coordinates.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex::new(r * theta.cos(), r * theta.sin())
    }

    /// `e^{iθ}`, a point on the unit circle.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Squared modulus `re² + im²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`, computed with `hypot` for robustness.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse. Returns infinities when `self` is zero,
    /// mirroring `1.0 / 0.0` semantics for reals.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Complex::new(self.re / d, -self.im / d)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex::new(self.re * s, self.im * s)
    }

    /// Integer power by repeated squaring.
    pub fn powi(self, mut n: i32) -> Self {
        if n < 0 {
            return self.recip().powi(-n);
        }
        let mut base = self;
        let mut acc = Complex::ONE;
        while n > 0 {
            if n & 1 == 1 {
                acc *= base;
            }
            base *= base;
            n >>= 1;
        }
        acc
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        Complex::from_polar(self.re.exp(), self.im)
    }

    /// Principal natural logarithm.
    #[inline]
    pub fn ln(self) -> Self {
        Complex::new(self.abs().ln(), self.arg())
    }

    /// Returns true when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::from_real(re)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // division via reciprocal
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.recip()
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Add<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: f64) -> Complex {
        Complex::new(self.re + rhs, self.im)
    }
}

impl Sub<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: f64) -> Complex {
        Complex::new(self.re - rhs, self.im)
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        rhs.scale(self)
    }
}

impl Sub<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self - rhs.re, -rhs.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex {
    #[inline]
    fn div_assign(&mut self, rhs: Complex) {
        *self = *self / rhs;
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex::new(3.0, -4.0);
        assert_eq!(z + Complex::ZERO, z);
        assert_eq!(z * Complex::ONE, z);
        assert_eq!(z - z, Complex::ZERO);
        assert!(close(z * z.recip(), Complex::ONE, 1e-15));
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(Complex::I * Complex::I, Complex::new(-1.0, 0.0));
    }

    #[test]
    fn conjugate_multiplication_gives_norm() {
        let z = Complex::new(1.5, 2.5);
        let n = z * z.conj();
        assert!((n.re - z.norm_sqr()).abs() < 1e-15);
        assert!(n.im.abs() < 1e-15);
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex::from_polar(2.0, 0.7);
        assert!((z.abs() - 2.0).abs() < 1e-15);
        assert!((z.arg() - 0.7).abs() < 1e-15);
    }

    #[test]
    fn exp_ln_round_trip() {
        let z = Complex::new(0.3, -1.2);
        assert!(close(z.exp().ln(), z, 1e-14));
    }

    #[test]
    fn euler_identity() {
        let z = Complex::cis(std::f64::consts::PI);
        assert!(close(z, Complex::new(-1.0, 0.0), 1e-15));
    }

    #[test]
    fn powi_matches_repeated_multiplication() {
        let z = Complex::new(0.9, 0.2);
        let mut acc = Complex::ONE;
        for n in 0..12 {
            assert!(close(z.powi(n), acc, 1e-12));
            acc *= z;
        }
    }

    #[test]
    fn powi_negative_exponent() {
        let z = Complex::new(1.25, -0.5);
        assert!(close(z.powi(-3), (z * z * z).recip(), 1e-12));
    }

    #[test]
    fn division_matches_multiplication_by_reciprocal() {
        let a = Complex::new(2.0, 1.0);
        let b = Complex::new(-0.5, 3.0);
        assert!(close(a / b * b, a, 1e-14));
    }

    #[test]
    fn real_scalar_ops() {
        let z = Complex::new(1.0, 2.0);
        assert_eq!(z * 2.0, Complex::new(2.0, 4.0));
        assert_eq!(2.0 * z, Complex::new(2.0, 4.0));
        assert_eq!(z / 2.0, Complex::new(0.5, 1.0));
        assert_eq!(z + 1.0, Complex::new(2.0, 2.0));
        assert_eq!(1.0 - z, Complex::new(0.0, -2.0));
    }

    #[test]
    fn sum_iterator() {
        let zs = [Complex::new(1.0, 1.0), Complex::new(2.0, -3.0)];
        let s: Complex = zs.iter().copied().sum();
        assert_eq!(s, Complex::new(3.0, -2.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2i");
    }
}
