//! Special functions: log-gamma and the regularized incomplete gamma
//! function.
//!
//! The paper (§V) approximates the distribution of a message's *total*
//! waiting time through an `n`-stage network by a gamma distribution whose
//! mean and variance come from the stage-by-stage formulas. Evaluating that
//! approximation — the smooth curves in Figs. 3–8 — requires `ln Γ(a)` and
//! the regularized lower/upper incomplete gamma functions `P(a, x)`,
//! `Q(a, x)`. These are implemented with the classic Lanczos approximation
//! and the series / continued-fraction pair (Numerical-Recipes style), both
//! standard, well-conditioned constructions.

/// Lanczos coefficients (g = 7, n = 9), giving ~15 significant digits.
const LANCZOS_G: f64 = 7.0;
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural logarithm of the gamma function for `x > 0`.
///
/// Accurate to roughly 14–15 significant digits over the range used here.
///
/// # Panics
/// Panics if `x <= 0` (the reflection branch is not needed by this project
/// and keeping the domain positive avoids silent NaNs).
///
/// # Examples
/// ```
/// use banyan_numerics::ln_gamma;
/// assert!((ln_gamma(1.0)).abs() < 1e-14);          // Γ(1) = 1
/// assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-12); // Γ(5) = 24
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    if x < 0.5 {
        // Reflection formula keeps the Lanczos sum well conditioned near 0.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = LANCZOS[0];
    let t = x + LANCZOS_G + 0.5;
    for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Maximum iterations for the series / continued-fraction evaluations.
const MAX_ITER: usize = 500;
const EPS: f64 = 1e-15;

/// Lower regularized incomplete gamma `P(a, x) = γ(a, x) / Γ(a)`.
///
/// This is the CDF of a Gamma(shape `a`, scale 1) random variable at `x`.
/// Valid for `a > 0`, `x >= 0`; monotone from 0 to 1 in `x`.
pub fn reg_gamma_lower(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "shape must be positive, got {a}");
    assert!(x >= 0.0, "argument must be nonnegative, got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_series(a, x)
    } else {
        1.0 - gamma_cont_frac(a, x)
    }
}

/// Upper regularized incomplete gamma `Q(a, x) = 1 − P(a, x)`.
///
/// Computed directly from the continued fraction when `x` is large so the
/// tail keeps full relative precision — this matters for the paper's
/// tail-probability comparisons (Figs. 3–8 emphasize the tails).
pub fn reg_gamma_upper(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "shape must be positive, got {a}");
    assert!(x >= 0.0, "argument must be nonnegative, got {x}");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_series(a, x)
    } else {
        gamma_cont_frac(a, x)
    }
}

/// Series representation of `P(a, x)`, convergent for `x < a + 1`.
fn gamma_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            break;
        }
    }
    (sum.ln() + a * x.ln() - x - ln_gamma(a)).exp().min(1.0)
}

/// Continued-fraction representation of `Q(a, x)` (modified Lentz),
/// convergent for `x >= a + 1`.
fn gamma_cont_frac(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    ((a * x.ln() - x - ln_gamma(a)).exp() * h).min(1.0)
}

/// Natural logarithm of the (complete) beta function,
/// `ln B(a, b) = ln Γ(a) + ln Γ(b) − ln Γ(a + b)`.
pub fn ln_beta(a: f64, b: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "beta parameters must be positive, got ({a}, {b})");
    ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b)
}

/// Regularized incomplete beta function `I_x(a, b)` — the CDF of a
/// Beta(a, b) random variable at `x`. Monotone from 0 to 1 in `x`, with
/// the symmetry `I_x(a, b) = 1 − I_{1−x}(b, a)`.
///
/// Evaluated by the standard continued fraction (modified Lentz), using
/// whichever of the two symmetric forms converges fast
/// (`x < (a+1)/(a+b+2)` picks the direct one). This is the machinery
/// behind the Student-t CDF used by the batch-means confidence
/// intervals: `F_df(t) = 1 − ½ I_{df/(df+t²)}(df/2, ½)` for `t ≥ 0`.
pub fn reg_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "beta parameters must be positive, got ({a}, {b})");
    assert!((0.0..=1.0).contains(&x), "argument must be in [0,1], got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = a * x.ln() + b * (1.0 - x).ln() - ln_beta(a, b);
    if x < (a + 1.0) / (a + b + 2.0) {
        (ln_front.exp() * beta_cont_frac(a, b, x) / a).clamp(0.0, 1.0)
    } else {
        (1.0 - ln_front.exp() * beta_cont_frac(b, a, 1.0 - x) / b).clamp(0.0, 1.0)
    }
}

/// Continued fraction for the incomplete beta (modified Lentz),
/// convergent for `x < (a+1)/(a+b+2)`.
fn beta_cont_frac(a: f64, b: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Error function, via the incomplete gamma identity
/// `erf(x) = P(1/2, x²)` for `x >= 0` (odd extension for `x < 0`).
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        0.0
    } else if x > 0.0 {
        reg_gamma_lower(0.5, x * x)
    } else {
        -reg_gamma_lower(0.5, x * x)
    }
}

/// Natural logarithm of `n!` via `ln_gamma`.
pub fn ln_factorial(n: u64) -> f64 {
    ln_gamma(n as f64 + 1.0)
}

/// Binomial coefficient `C(n, k)` as an `f64` (exact for small arguments,
/// accurate to ~1e-14 relative otherwise).
pub fn binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    if k == 0 {
        return 1.0;
    }
    if n <= 62 {
        // Exact integer arithmetic: build C(n−k+i, i) incrementally —
        // each division is exact, and intermediate values never exceed
        // the final C(n, k) <= C(62, 31) < 2^63.
        let mut res: u128 = 1;
        for i in 1..=k {
            res = res * (n - k + i) as u128 / i as u128;
        }
        res as f64
    } else {
        (ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_of_integers_is_factorial() {
        let mut fact = 1.0f64;
        for n in 1..15u32 {
            let lg = ln_gamma(n as f64);
            assert!(
                (lg - fact.ln()).abs() < 1e-11 * fact.ln().abs().max(1.0),
                "Γ({n})"
            );
            fact *= n as f64;
        }
    }

    #[test]
    fn gamma_half_is_sqrt_pi() {
        let want = std::f64::consts::PI.sqrt().ln();
        assert!((ln_gamma(0.5) - want).abs() < 1e-13);
    }

    #[test]
    fn gamma_recurrence_holds() {
        for &x in &[0.1, 0.7, 1.3, 2.9, 7.5, 31.4] {
            let lhs = ln_gamma(x + 1.0);
            let rhs = ln_gamma(x) + x.ln();
            assert!((lhs - rhs).abs() < 1e-12 * lhs.abs().max(1.0), "x={x}");
        }
    }

    #[test]
    #[should_panic(expected = "x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        ln_gamma(0.0);
    }

    #[test]
    fn incomplete_gamma_limits() {
        assert_eq!(reg_gamma_lower(2.5, 0.0), 0.0);
        assert_eq!(reg_gamma_upper(2.5, 0.0), 1.0);
        assert!((reg_gamma_lower(2.5, 1e3) - 1.0).abs() < 1e-12);
        assert!(reg_gamma_upper(2.5, 1e3) < 1e-12);
    }

    #[test]
    fn lower_plus_upper_is_one() {
        for &a in &[0.3, 1.0, 2.5, 10.0, 50.0] {
            for &x in &[0.01, 0.5, 1.0, 3.0, 10.0, 60.0] {
                let s = reg_gamma_lower(a, x) + reg_gamma_upper(a, x);
                assert!((s - 1.0).abs() < 1e-12, "a={a} x={x} s={s}");
            }
        }
    }

    #[test]
    fn exponential_special_case() {
        // a = 1: P(1, x) = 1 - e^{-x}.
        for &x in &[0.1f64, 0.5, 1.0, 2.0, 5.0, 20.0] {
            let want: f64 = 1.0 - (-x).exp();
            assert!((reg_gamma_lower(1.0, x) - want).abs() < 1e-13, "x={x}");
        }
    }

    #[test]
    fn erlang_special_case() {
        // a = 3 (integer): Q(3, x) = e^{-x}(1 + x + x²/2).
        for &x in &[0.2f64, 1.0, 2.5, 8.0] {
            let want = (-x).exp() * (1.0 + x + 0.5 * x * x);
            assert!((reg_gamma_upper(3.0, x) - want).abs() < 1e-12, "x={x}");
        }
    }

    #[test]
    fn p_is_monotone_in_x() {
        let a = 4.2;
        let mut prev = -1.0;
        for i in 0..200 {
            let x = i as f64 * 0.1;
            let p = reg_gamma_lower(a, x);
            assert!(p >= prev - 1e-15);
            assert!((0.0..=1.0).contains(&p));
            prev = p;
        }
    }

    #[test]
    fn beta_endpoints_and_symmetry() {
        assert_eq!(reg_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(reg_beta(2.0, 3.0, 1.0), 1.0);
        for &(a, b) in &[(0.5f64, 0.5f64), (2.0, 3.0), (10.0, 0.5), (7.3, 7.3)] {
            for i in 1..20 {
                let x = i as f64 / 20.0;
                let s = reg_beta(a, b, x) + reg_beta(b, a, 1.0 - x);
                assert!((s - 1.0).abs() < 1e-12, "a={a} b={b} x={x}: {s}");
            }
        }
    }

    #[test]
    fn beta_uniform_special_case() {
        // I_x(1, 1) = x.
        for i in 0..=10 {
            let x = i as f64 / 10.0;
            assert!((reg_beta(1.0, 1.0, x) - x).abs() < 1e-13);
        }
        // I_x(1, b) = 1 − (1−x)^b, I_x(a, 1) = x^a.
        for &x in &[0.1f64, 0.4, 0.9] {
            assert!((reg_beta(1.0, 3.0, x) - (1.0 - (1.0 - x).powi(3))).abs() < 1e-12);
            assert!((reg_beta(4.0, 1.0, x) - x.powi(4)).abs() < 1e-12);
        }
    }

    #[test]
    fn beta_half_half_is_arcsine() {
        // I_x(1/2, 1/2) = (2/π) asin(√x).
        for &x in &[0.05f64, 0.25, 0.5, 0.75, 0.95] {
            let want = 2.0 / std::f64::consts::PI * x.sqrt().asin();
            assert!((reg_beta(0.5, 0.5, x) - want).abs() < 1e-11, "x={x}");
        }
    }

    #[test]
    fn beta_is_monotone_in_x() {
        let mut prev = -1.0;
        for i in 0..=400 {
            let x = i as f64 / 400.0;
            let v = reg_beta(3.7, 1.9, x);
            assert!(v >= prev - 1e-15);
            assert!((0.0..=1.0).contains(&v));
            prev = v;
        }
    }

    #[test]
    fn ln_beta_matches_integer_values() {
        // B(a, b) = (a−1)!(b−1)!/(a+b−1)! for integers: B(3, 4) = 1/60.
        assert!((ln_beta(3.0, 4.0) - (1.0f64 / 60.0).ln()).abs() < 1e-12);
        assert!((ln_beta(1.0, 1.0)).abs() < 1e-13);
    }

    #[test]
    fn erf_known_values() {
        assert!(erf(0.0).abs() < 1e-15);
        assert!((erf(1.0) - 0.842_700_792_949_714_9).abs() < 1e-10);
        assert!((erf(-1.0) + 0.842_700_792_949_714_9).abs() < 1e-10);
        assert!((erf(3.0) - 0.999_977_909_503_001_4).abs() < 1e-10);
    }

    #[test]
    fn binomial_small_exact() {
        assert_eq!(binomial(5, 2), 10.0);
        assert_eq!(binomial(10, 0), 1.0);
        assert_eq!(binomial(10, 10), 1.0);
        assert_eq!(binomial(3, 7), 0.0);
        assert_eq!(binomial(52, 5), 2_598_960.0);
    }

    #[test]
    fn binomial_large_via_lgamma() {
        // C(100, 50) = 1.0089134...e29
        let got = binomial(100, 50);
        let want = 1.008_913_445_455_641_9e29;
        assert!((got - want).abs() / want < 1e-12);
    }

    #[test]
    fn pascal_rule() {
        for n in 1..40u64 {
            for k in 1..n {
                let lhs = binomial(n, k);
                let rhs = binomial(n - 1, k - 1) + binomial(n - 1, k);
                assert!((lhs - rhs).abs() <= 1e-9 * lhs.max(1.0), "n={n} k={k}");
            }
        }
    }
}
