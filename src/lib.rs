//! # banyan-repro
//!
//! Umbrella crate for the reproduction of Kruskal, Snir & Weiss,
//! *The Distribution of Waiting Times in Clocked Multistage
//! Interconnection Networks* (IEEE Trans. Computers 37(11), 1988;
//! ICPP 1986).
//!
//! The work lives in four library crates, re-exported here:
//!
//! * [`banyan_core`] (re-exported as `core`) — the paper's analysis: Theorem 1 (exact
//!   first-stage waiting-time distribution), the §III closed forms, the
//!   §IV later-stage approximations, and the §V total-delay/gamma model.
//! * [`banyan_sim`] (re-exported as `sim`) — the clocked banyan (omega) network simulator
//!   and the single-queue Lindley simulator.
//! * [`banyan_flow`] (re-exported as `flow`) — the generalized feed-forward flow engine:
//!   per-flow end-to-end delay in arbitrary routed DAGs (meshes,
//!   fat-trees, butterflies) under Kleinrock's independence assumption.
//! * [`banyan_stats`] (re-exported as `stats`) — streaming statistics, histograms, the
//!   gamma distribution, distribution distances.
//! * [`banyan_numerics`] (re-exported as `numerics`) — FFT, special functions, root
//!   finding.
//!
//! See the `examples/` directory for end-to-end walkthroughs
//! (`quickstart`, `ultracomputer`, `rp3_memory_traffic`,
//! `message_size_tradeoff`) and the `banyan-bench` crate for the
//! table/figure regeneration harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod serve;

pub use banyan_core as core;
pub use banyan_flow as flow;
pub use banyan_numerics as numerics;
pub use banyan_obs as obs;
pub use banyan_sim as sim;
pub use banyan_stats as stats;

/// One-import convenience for examples and downstream experiments.
pub mod prelude {
    pub use banyan_core::later_stages::StageConstants;
    pub use banyan_core::models::{
        bulk_queue, geometric_queue, mixed_queue, nonuniform_queue, uniform_queue,
    };
    pub use banyan_core::total_delay::TotalWaiting;
    pub use banyan_core::{FirstStage, Pgf};
    pub use banyan_flow::{
        butterfly, fat_tree, mesh, omega, simulate_flows, FlowAnalysis, FlowGraph, FlowSimConfig,
    };
    pub use banyan_obs::{Manifest, Telemetry, TelemetryConfig};
    pub use banyan_sim::input_queued::{run_input_queued, InputQueuedConfig};
    pub use banyan_sim::network::{
        run_network, run_network_instrumented, NetworkConfig, NetworkStats, Routing,
    };
    pub use banyan_sim::queue::{run_queue, run_queue_instrumented, ArrivalDist, QueueConfig};
    pub use banyan_sim::runner::{
        run_network_replicated, run_network_replicated_instrumented, run_queue_replicated,
        run_queue_replicated_instrumented,
    };
    pub use banyan_sim::traffic::{ServiceDist, Workload};
    pub use banyan_stats::{Gamma, IntHistogram, OnlineStats, Sectioned};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_is_usable() {
        let q = uniform_queue(2, 0.5, 1).unwrap();
        assert!((q.mean_wait() - 0.25).abs() < 1e-12);
        let t = TotalWaiting::new(2, 3, 0.5, 1);
        assert!(t.mean_total() > 0.0);
    }
}
