//! Answer computation: analytic closed forms, the simulation slow
//! path, drift probing, and the bit-stable response rendering.
//!
//! The daemon's contract is that an analytic answer is *exactly* what a
//! direct `banyan-core` library call returns — the response body is
//! rendered with the shortest-round-trip float formatter
//! ([`banyan_obs::json::fmt_f64`]) and re-parsed with Rust's correctly
//! rounded `str::parse::<f64>`, so clients recover the library's f64s
//! bit for bit (the `serve` integration tests assert this via
//! `to_bits`).

use super::query::Query;
use banyan_core::later_stages::StageConstants;
use banyan_core::models::{geometric_queue, nonuniform_queue};
use banyan_core::total_delay::{
    multi_size_total_mean, multi_size_total_var, nonuniform_total_mean, nonuniform_total_var,
    TotalWaiting,
};
use banyan_core::{FirstStage, GeometricService, UniformBernoulli};
use banyan_obs::json::JsonObject;
use banyan_obs::tail::DriftReport;
use banyan_obs::{DistSketch, Telemetry, TelemetryConfig};
use banyan_sim::network::NetworkConfig;
use banyan_sim::runner::run_network_replicated_instrumented;
use banyan_sim::traffic::{ServiceDist, Workload};

/// Quantile levels every answer reports, matching the observability
/// stack's `REPORT_QUANTILES`.
pub const LEVELS: [f64; 4] = [0.50, 0.90, 0.99, 0.999];
/// Labels for [`LEVELS`].
pub const LEVEL_LABELS: [&str; 4] = ["p50", "p90", "p99", "p999"];

/// The closed-form model that covers a query, when one exists.
pub enum AnalyticModel {
    /// Constant service, uniform traffic, any depth: the §V
    /// [`TotalWaiting`] composition (exact first stage, §IV interior
    /// stages, gamma distributional model).
    Total(TotalWaiting),
    /// Message-size mixture, uniform traffic: §IV-C composition with a
    /// moment-matched gamma.
    MultiSize {
        /// Total mean waiting time.
        mean: f64,
        /// Total waiting-time variance.
        var: f64,
    },
    /// Hot-spot traffic, unit messages: §IV-D composition with a
    /// moment-matched gamma.
    Nonuniform {
        /// Total mean waiting time.
        mean: f64,
        /// Total waiting-time variance.
        var: f64,
    },
    /// Geometric service through a single stage: Theorem 1 exact.
    Geom1(Box<FirstStage<UniformBernoulli, GeometricService>>),
}

impl AnalyticModel {
    /// Picks the closed form covering `q`, or `None` when only the
    /// simulator can answer (geometric service beyond one stage,
    /// hot-spot traffic with non-unit messages or unstable favorite
    /// queues, mixtures under hot spots).
    pub fn for_query(q: &Query) -> Option<AnalyticModel> {
        match (&q.service, q.q) {
            (ServiceDist::Constant(m), 0.0) => {
                Some(AnalyticModel::Total(TotalWaiting::new(q.k, q.stages, q.p, *m)))
            }
            (ServiceDist::Constant(1), _) => {
                // Gate on the exact first-stage model: an unstable
                // favorite queue means no steady state anywhere.
                nonuniform_queue(q.k, q.p, q.q, 1).ok()?;
                let c = StageConstants::paper();
                Some(AnalyticModel::Nonuniform {
                    mean: nonuniform_total_mean(&c, q.k, q.stages, q.p, q.q),
                    var: nonuniform_total_var(&c, q.k, q.stages, q.p, q.q),
                })
            }
            (ServiceDist::Mixed(sizes), 0.0) => {
                let c = StageConstants::paper();
                Some(AnalyticModel::MultiSize {
                    mean: multi_size_total_mean(&c, q.k, q.stages, q.p, sizes),
                    var: multi_size_total_var(&c, q.k, q.stages, q.p, sizes),
                })
            }
            (ServiceDist::Geometric(mu), qq) if qq == 0.0 && q.stages == 1 => geometric_queue(
                q.k, q.p, *mu,
            )
            .ok()
            .map(|fs| AnalyticModel::Geom1(Box::new(fs))),
            _ => None,
        }
    }

    /// Model name surfaced in the response.
    pub fn name(&self) -> &'static str {
        match self {
            AnalyticModel::Total(_) => "sec5-total-waiting",
            AnalyticModel::MultiSize { .. } => "sec4c-multi-size",
            AnalyticModel::Nonuniform { .. } => "sec4d-nonuniform",
            AnalyticModel::Geom1(_) => "theorem1-first-stage",
        }
    }

    /// Mean total waiting time.
    pub fn mean_wait(&self) -> f64 {
        match self {
            AnalyticModel::Total(t) => t.mean_total(),
            AnalyticModel::MultiSize { mean, .. } | AnalyticModel::Nonuniform { mean, .. } => {
                *mean
            }
            AnalyticModel::Geom1(fs) => fs.mean_wait(),
        }
    }

    /// Total waiting-time variance.
    pub fn var_wait(&self) -> f64 {
        match self {
            AnalyticModel::Total(t) => t.var_total(),
            AnalyticModel::MultiSize { var, .. } | AnalyticModel::Nonuniform { var, .. } => *var,
            AnalyticModel::Geom1(fs) => fs.var_wait(),
        }
    }

    /// Waiting-time quantile at `level` (gamma model for the
    /// compositions, exact for Theorem 1; 0 at zero load where the
    /// distribution is a point mass).
    pub fn wait_quantile(&self, level: f64) -> f64 {
        match self {
            AnalyticModel::Total(t) => t.gamma().map(|g| g.quantile(level)).unwrap_or(0.0),
            AnalyticModel::MultiSize { mean, var } | AnalyticModel::Nonuniform { mean, var } => {
                banyan_stats::Gamma::from_mean_var(*mean, *var)
                    .map(|g| g.quantile(level))
                    .unwrap_or(0.0)
            }
            AnalyticModel::Geom1(fs) => fs.wait_quantile(level) as f64,
        }
    }

    /// Waiting-time CDF, used by the KS drift gate. For the discrete
    /// Theorem 1 model the CDF steps at integers, which is exactly what
    /// `ks_distance`'s half-integer evaluation points expect.
    pub fn wait_cdf(&self, x: f64) -> f64 {
        let gamma_cdf = |mean: f64, var: f64, x: f64| {
            match banyan_stats::Gamma::from_mean_var(mean, var) {
                Some(g) => g.cdf(x),
                // Zero load: all mass at zero waiting.
                None => {
                    if x >= 0.0 {
                        1.0
                    } else {
                        0.0
                    }
                }
            }
        };
        match self {
            AnalyticModel::Total(t) => gamma_cdf(t.mean_total(), t.var_total(), x),
            AnalyticModel::MultiSize { mean, var } | AnalyticModel::Nonuniform { mean, var } => {
                gamma_cdf(*mean, *var, x)
            }
            AnalyticModel::Geom1(fs) => {
                if x < 0.0 {
                    0.0
                } else {
                    fs.wait_cdf(x.floor() as u64)
                }
            }
        }
    }
}

/// Simulation effort knobs (probe vs full answer use different sizes).
#[derive(Clone, Copy, Debug)]
pub struct SimSettings {
    /// Measured cycles per replication.
    pub cycles: u64,
    /// Independent replications.
    pub reps: u32,
    /// Base seed (replication `i` runs at `seed + i`).
    pub seed: u64,
}

/// One simulation outcome, with the waiting-time sketch for drift
/// checks and quantiles.
pub struct SimOutcome {
    /// Mean total waiting time over tracked messages.
    pub mean: f64,
    /// Waiting-time variance.
    pub var: f64,
    /// Waiting-time quantiles at [`LEVELS`] (integer cycles).
    pub wait_q: [u64; 4],
    /// Tracked messages delivered.
    pub delivered: u64,
    /// The exact waiting-time sketch (`net.wait.total`).
    pub sketch: DistSketch,
    /// Settings the run used.
    pub settings: SimSettings,
}

/// Runs the replicated simulator for `q` into a throwaway telemetry
/// sink (the daemon's own registry only sees serve-side metrics, never
/// per-query `net.*` series, which would mix configurations).
pub fn run_sim(q: &Query, settings: SimSettings) -> Result<SimOutcome, String> {
    let workload = Workload {
        p: q.p,
        q: q.q,
        service: q.service.clone(),
    };
    let mut cfg = NetworkConfig::new(q.k, q.stages, workload);
    cfg.measure_cycles = settings.cycles;
    cfg.warmup_cycles = (settings.cycles / 10).max(200);
    cfg.seed = settings.seed;
    let tel = Telemetry::new(TelemetryConfig::on());
    let stats = run_network_replicated_instrumented(&cfg, settings.reps, 1, &tel);
    let sketch = tel
        .sketches()
        .get("net.wait.total")
        .ok_or_else(|| "simulation produced no waiting-time sketch".to_string())?;
    let mut wait_q = [0u64; 4];
    for (slot, level) in wait_q.iter_mut().zip(LEVELS) {
        *slot = sketch.quantile(level);
    }
    Ok(SimOutcome {
        mean: stats.total_wait.mean(),
        var: stats.total_wait.variance(),
        wait_q,
        delivered: stats.delivered,
        sketch,
        settings,
    })
}

/// Probes the drift gauge for an analytic model: a small simulation of
/// the same configuration, then the two-sided KS distance between the
/// observed waiting-time sketch and the model CDF — the same statistic
/// the `net.drift.ks_ppm.*` gauges report.
pub fn probe_drift(
    q: &Query,
    model: &AnalyticModel,
    settings: SimSettings,
) -> Result<DriftReport, String> {
    let outcome = run_sim(q, settings)?;
    Ok(DriftReport::against(
        "net.wait.total",
        &outcome.sketch,
        |x| model.wait_cdf(x),
        model.mean_wait(),
        None,
    ))
}

/// Renders the analytic answer body. Every float goes through
/// [`fmt_f64`] so clients re-parse the library's values bit for bit.
pub fn analytic_body(q: &Query, model: &AnalyticModel, drift_ks: Option<f64>) -> String {
    let wait_q: Vec<f64> = LEVELS.iter().map(|&l| model.wait_quantile(l)).collect();
    // Cut-through pipeline: delay = waiting + (n − 1) + service. For
    // the §V model this reproduces `delay_quantile` / `mean_total_delay`
    // exactly (f64 addition of the same exact-integer shift).
    let (delay_mean, delay_q): (f64, Vec<f64>) = match model {
        AnalyticModel::Total(t) => (
            t.mean_total_delay(),
            LEVELS.iter().map(|&l| t.delay_quantile(l)).collect(),
        ),
        _ => {
            let shift = (q.stages - 1) as f64 + q.service.mean();
            (
                model.mean_wait() + shift,
                wait_q.iter().map(|w| w + shift).collect(),
            )
        }
    };
    render_body(
        q,
        "analytic",
        model.name(),
        model.mean_wait(),
        model.var_wait(),
        &wait_q,
        delay_mean,
        &delay_q,
        drift_ks,
        None,
    )
}

/// Renders a simulation answer body.
pub fn sim_body(q: &Query, outcome: &SimOutcome, drift_ks: Option<f64>) -> String {
    let wait_q: Vec<f64> = outcome.wait_q.iter().map(|&v| v as f64).collect();
    let shift = (q.stages - 1) as f64 + q.service.mean();
    let delay_q: Vec<f64> = wait_q.iter().map(|w| w + shift).collect();
    render_body(
        q,
        "simulation",
        "replicated-simulation",
        outcome.mean,
        outcome.var,
        &wait_q,
        outcome.mean + shift,
        &delay_q,
        drift_ks,
        Some(outcome),
    )
}

#[allow(clippy::too_many_arguments)]
fn render_body(
    q: &Query,
    source: &str,
    model: &str,
    mean_wait: f64,
    var_wait: f64,
    wait_q: &[f64],
    delay_mean: f64,
    delay_q: &[f64],
    drift_ks: Option<f64>,
    sim: Option<&SimOutcome>,
) -> String {
    let mut o = JsonObject::new();
    o.field_str("schema", "banyan-serve/answer/v1")
        .field_str("source", source)
        .field_str("model", model);
    let mut cfg = JsonObject::new();
    cfg.field_u64("k", u64::from(q.k))
        .field_u64("stages", u64::from(q.stages))
        .field_f64("p", q.p)
        .field_f64("q", q.q)
        .field_str("service", &q.service_label())
        .field_str("mode", q.mode.name());
    o.field_raw("config", &cfg.finish());
    o.field_f64("rho", q.rho());
    let mut wait = JsonObject::new();
    wait.field_f64("mean", mean_wait).field_f64("var", var_wait);
    for (label, v) in LEVEL_LABELS.iter().zip(wait_q) {
        wait.field_f64(label, *v);
    }
    o.field_raw("wait", &wait.finish());
    let mut delay = JsonObject::new();
    delay.field_f64("mean", delay_mean);
    for (label, v) in LEVEL_LABELS.iter().zip(delay_q) {
        delay.field_f64(label, *v);
    }
    o.field_raw("delay", &delay.finish());
    match drift_ks {
        Some(ks) => o.field_f64("drift_ks", ks),
        None => o.field_raw("drift_ks", "null"),
    };
    match sim {
        Some(s) => {
            let mut detail = JsonObject::new();
            detail
                .field_u64("cycles", s.settings.cycles)
                .field_u64("reps", u64::from(s.settings.reps))
                .field_u64("seed", s.settings.seed)
                .field_u64("delivered", s.delivered);
            o.field_raw("sim", &detail.finish());
        }
        None => {
            o.field_raw("sim", "null");
        }
    }
    let mut body = o.finish();
    body.push('\n');
    body
}

/// Convenience used by tests: pull a float field out of a rendered
/// answer, failing loudly on absent paths.
pub fn body_f64(body: &str, section: &str, field: &str) -> f64 {
    let doc = banyan_obs::json::JsonValue::parse(body).expect("answer body parses");
    doc.get(section)
        .and_then(|s| s.get(field))
        .and_then(|v| v.as_f64())
        .unwrap_or_else(|| panic!("missing {section}.{field} in {body}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::query::Query;

    fn q(json: &str) -> Query {
        Query::from_json(json).unwrap()
    }

    #[test]
    fn model_selection_covers_the_paper_families() {
        assert!(matches!(
            AnalyticModel::for_query(&q(r#"{"k":2,"stages":6,"p":0.5}"#)),
            Some(AnalyticModel::Total(_))
        ));
        assert!(matches!(
            AnalyticModel::for_query(&q(r#"{"p":0.1,"mix":"4:0.5,8:0.5"}"#)),
            Some(AnalyticModel::MultiSize { .. })
        ));
        assert!(matches!(
            AnalyticModel::for_query(&q(r#"{"p":0.3,"q":0.05}"#)),
            Some(AnalyticModel::Nonuniform { .. })
        ));
        assert!(matches!(
            AnalyticModel::for_query(&q(r#"{"stages":1,"p":0.3,"geometric_mu":0.5}"#)),
            Some(AnalyticModel::Geom1(_))
        ));
        // Geometric beyond one stage has no closed form here.
        assert!(
            AnalyticModel::for_query(&q(r#"{"stages":2,"p":0.3,"geometric_mu":0.5}"#)).is_none()
        );
        // Hot spot with non-unit messages: simulation only.
        assert!(AnalyticModel::for_query(&q(r#"{"p":0.1,"q":0.1,"m":2}"#)).is_none());
    }

    #[test]
    fn analytic_body_matches_library_bit_for_bit() {
        let query = q(r#"{"k":2,"stages":6,"p":0.5,"m":1,"mode":"analytic"}"#);
        let model = AnalyticModel::for_query(&query).unwrap();
        let body = analytic_body(&query, &model, None);
        let t = TotalWaiting::new(2, 6, 0.5, 1);
        assert_eq!(
            body_f64(&body, "wait", "mean").to_bits(),
            t.mean_total().to_bits()
        );
        assert_eq!(
            body_f64(&body, "wait", "var").to_bits(),
            t.var_total().to_bits()
        );
        assert_eq!(
            body_f64(&body, "wait", "p99").to_bits(),
            t.gamma().unwrap().quantile(0.99).to_bits()
        );
        assert_eq!(
            body_f64(&body, "delay", "p999").to_bits(),
            t.delay_quantile(0.999).to_bits()
        );
        assert_eq!(
            body_f64(&body, "delay", "mean").to_bits(),
            t.mean_total_delay().to_bits()
        );
    }

    #[test]
    fn zero_load_answers_are_all_zero_waiting() {
        let query = q(r#"{"k":2,"stages":4,"p":0.0}"#);
        let model = AnalyticModel::for_query(&query).unwrap();
        assert_eq!(model.mean_wait(), 0.0);
        assert_eq!(model.wait_quantile(0.99), 0.0);
        assert_eq!(model.wait_cdf(0.5), 1.0);
        assert_eq!(model.wait_cdf(-0.5), 0.0);
    }

    #[test]
    fn sim_runs_and_reports_quantiles() {
        let query = q(r#"{"k":2,"stages":3,"p":0.4,"mode":"simulate"}"#);
        let outcome = run_sim(
            &query,
            SimSettings {
                cycles: 400,
                reps: 2,
                seed: 7,
            },
        )
        .unwrap();
        assert!(outcome.delivered > 0);
        assert!(outcome.mean >= 0.0);
        assert!(outcome.wait_q[0] <= outcome.wait_q[3]);
        let body = sim_body(&query, &outcome, None);
        assert!(body.contains("\"source\": \"simulation\""), "{body}");
        assert!(body.contains("\"delivered\""), "{body}");
    }

    #[test]
    fn probe_drift_is_small_where_the_paper_matches() {
        let query = q(r#"{"k":2,"stages":6,"p":0.5}"#);
        let model = AnalyticModel::for_query(&query).unwrap();
        let report = probe_drift(
            &query,
            &model,
            SimSettings {
                cycles: 2_000,
                reps: 2,
                seed: 11,
            },
        )
        .unwrap();
        // PR 4 pinned KS < 0.05 for this family at experiment scale;
        // the small probe gets a loose bound.
        assert!(report.ks < 0.15, "ks = {}", report.ks);
        assert!(report.ks > 0.0);
    }
}
