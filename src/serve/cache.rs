//! Memoized config→answer cache.
//!
//! Keys are the canonical query renderings from
//! [`crate::serve::query::Query::cache_key`]; values are fully rendered
//! response bodies, so a hit costs one map lookup and one `write`.
//! Eviction is FIFO at a fixed capacity — the workload this daemon
//! exists for (capacity planning dashboards re-asking a stable set of
//! configurations) is cache-friendly enough that recency tracking is
//! not worth the extra bookkeeping on the hot path.

use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;

/// A cached, fully rendered answer.
#[derive(Clone, Debug)]
pub struct CachedAnswer {
    /// Response body (bit-stable JSON).
    pub body: String,
    /// `"analytic"` or `"simulation"` — surfaced in `X-Banyan-Source`.
    pub source: &'static str,
}

struct Inner {
    map: HashMap<String, CachedAnswer>,
    order: VecDeque<String>,
}

/// Thread-safe FIFO-bounded answer cache.
pub struct AnswerCache {
    inner: Mutex<Inner>,
    cap: usize,
}

impl AnswerCache {
    /// Creates a cache holding at most `cap` answers (minimum 1).
    pub fn new(cap: usize) -> Self {
        AnswerCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                order: VecDeque::new(),
            }),
            cap: cap.max(1),
        }
    }

    /// Looks up a canonical key.
    pub fn get(&self, key: &str) -> Option<CachedAnswer> {
        self.inner.lock().unwrap().map.get(key).cloned()
    }

    /// Inserts an answer, evicting the oldest entry at capacity. When
    /// two workers computed the same miss concurrently the second
    /// insert replaces the first without double-counting the key.
    pub fn insert(&self, key: String, answer: CachedAnswer) {
        let mut inner = self.inner.lock().unwrap();
        if inner.map.insert(key.clone(), answer).is_none() {
            inner.order.push_back(key);
            while inner.order.len() > self.cap {
                if let Some(old) = inner.order.pop_front() {
                    inner.map.remove(&old);
                }
            }
        }
    }

    /// Number of cached answers.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ans(body: &str) -> CachedAnswer {
        CachedAnswer {
            body: body.to_string(),
            source: "analytic",
        }
    }

    #[test]
    fn hit_after_insert() {
        let c = AnswerCache::new(4);
        assert!(c.get("a").is_none());
        c.insert("a".to_string(), ans("1"));
        assert_eq!(c.get("a").unwrap().body, "1");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn fifo_eviction_at_capacity() {
        let c = AnswerCache::new(2);
        c.insert("a".to_string(), ans("1"));
        c.insert("b".to_string(), ans("2"));
        c.insert("c".to_string(), ans("3"));
        assert!(c.get("a").is_none(), "oldest entry evicted");
        assert!(c.get("b").is_some());
        assert!(c.get("c").is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn duplicate_insert_replaces_without_growing() {
        let c = AnswerCache::new(2);
        c.insert("a".to_string(), ans("1"));
        c.insert("a".to_string(), ans("2"));
        assert_eq!(c.get("a").unwrap().body, "2");
        assert_eq!(c.len(), 1);
        // The replaced key still evicts in its original position.
        c.insert("b".to_string(), ans("3"));
        c.insert("c".to_string(), ans("4"));
        assert!(c.get("a").is_none());
    }

    #[test]
    fn capacity_floor_is_one() {
        let c = AnswerCache::new(0);
        c.insert("a".to_string(), ans("1"));
        assert_eq!(c.len(), 1);
        c.insert("b".to_string(), ans("2"));
        assert_eq!(c.len(), 1);
        assert!(c.get("b").is_some());
    }
}
