//! The live operations plane: per-route rolling SLO windows, the
//! shared request timer, the structured access log, and the hot-key
//! ledger the drift monitor re-probes.
//!
//! Everything here is *observational*: the plane reads requests and
//! fully rendered responses, so `/query` and `/v1/*` bodies stay
//! byte-identical with the plane on or off. The per-request cost is
//! bounded by design — a staged rolling append, one histogram record,
//! and (when enabled) one buffered access-log line — and enforced by
//! the serve section of the `overhead_guard` bench (≤1.02× with the
//! plane fully on).

use super::http::{Request, Response};
use super::query::Query;
use banyan_obs::json::JsonObject;
use banyan_obs::rolling::{RollingStat, QUANTILE_LABELS};
use banyan_obs::{Exposition, RateLimiter, Registry, Telemetry};
use std::fs::File;
use std::io::{BufWriter, Write};
use std::sync::Mutex;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Route labels the plane aggregates under (unknown paths pool into
/// `other`). Fixed at startup so every per-route structure is
/// preallocated and lock-free to look up.
pub const ROUTES: &[&str] = &[
    "query", "flow", "batch", "metrics", "statusz", "healthz", "readyz", "shutdown", "other",
];

/// Maps a request path onto its [`ROUTES`] index.
pub fn route_index(path: &str) -> usize {
    let label = match path {
        "/query" => "query",
        "/v1/flow" => "flow",
        "/v1/batch" => "batch",
        "/metrics" => "metrics",
        "/statusz" => "statusz",
        "/healthz" => "healthz",
        "/readyz" => "readyz",
        "/shutdown" => "shutdown",
        _ => "other",
    };
    ROUTES.iter().position(|&r| r == label).expect("known label")
}

/// Latency bucket bounds (µs) for the per-route registry histograms:
/// cache hits land in the low buckets, probe/simulation answers in the
/// high ones, and anything beyond 1 s is explicit overflow.
pub const LATENCY_BOUNDS_US: &[u64] = &[
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 1_000_000,
];

/// How many distinct analytic configurations the drift monitor keeps
/// re-probing (FIFO beyond this).
const HOT_KEY_CAP: usize = 8;

std::thread_local! {
    /// Reused access-log line buffer — the flush path renders every
    /// staged record without a per-line allocation.
    static LINE_BUF: std::cell::RefCell<String> = const { std::cell::RefCell::new(String::new()) };
}

/// Appends the decimal rendering of `v` to `buf` without touching
/// `core::fmt` — the access-log line is on the serve overhead budget
/// and formatter dispatch is measurable there.
fn push_u64(buf: &mut String, mut v: u64) {
    let mut digits = [0u8; 20];
    let mut at = digits.len();
    loop {
        at -= 1;
        digits[at] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    buf.push_str(std::str::from_utf8(&digits[at..]).expect("decimal digits are ASCII"));
}

/// Appends `s` to `buf` with JSON string escaping, allocation-free —
/// the streaming twin of `banyan_obs::json::escape`.
fn push_escaped(buf: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(buf, "\\u{:04x}", c as u32);
            }
            c => buf.push(c),
        }
    }
}

/// The per-daemon operations plane. The per-request instruments
/// (latency histograms, access-log counters, the drift gauge) are
/// resolved to `Arc`s once at startup — the hot path never takes the
/// registry's name-lookup lock.
pub struct OpsPlane {
    started: Instant,
    rolling_enabled: bool,
    rolling: Vec<RollingStat>,
    latency: Vec<std::sync::Arc<banyan_obs::Histogram>>,
    access_log: Option<AccessLog>,
    log_lines: std::sync::Arc<banyan_obs::Counter>,
    log_suppressed: std::sync::Arc<banyan_obs::Counter>,
    last_ks_ppm: std::sync::Arc<banyan_obs::Gauge>,
    hot: Mutex<Vec<(String, Query)>>,
}

impl OpsPlane {
    /// Builds the plane, pre-registering every per-route instrument in
    /// `registry` (deterministic metric namespace from startup) and
    /// opening the access log when configured.
    pub fn new(
        registry: &Registry,
        rolling_enabled: bool,
        access_log_path: Option<&str>,
        access_log_sample_ms: u64,
    ) -> std::io::Result<OpsPlane> {
        let latency = ROUTES
            .iter()
            .map(|r| registry.histogram(&format!("serve.latency_us.{r}"), LATENCY_BOUNDS_US))
            .collect();
        registry.counter("serve.drift.probes_total");
        for name in ["serve.drift.degraded", "serve.drift.probe_ks_ppm"] {
            registry.gauge(name);
        }
        let access_log = match access_log_path {
            Some(path) => Some(AccessLog::open(path, access_log_sample_ms)?),
            None => None,
        };
        Ok(OpsPlane {
            started: Instant::now(),
            rolling_enabled,
            rolling: ROUTES.iter().map(|_| RollingStat::new()).collect(),
            latency,
            access_log,
            log_lines: registry.counter("serve.accesslog.lines_total"),
            log_suppressed: registry.counter("serve.accesslog.suppressed_total"),
            last_ks_ppm: registry.gauge("serve.drift.last_ks_ppm"),
            hot: Mutex::new(Vec::new()),
        })
    }

    /// Seconds since the daemon started.
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// Starts the RAII timer for one parsed request.
    pub fn timer(&self, path: &str) -> RequestTimer<'_> {
        RequestTimer {
            ops: self,
            route: route_index(path),
            started: Instant::now(),
            finished: false,
        }
    }

    /// Records one finished request: rolling windows, the latency
    /// histogram, and (when enabled) a staged access-log record. This
    /// is the per-request hot path the `overhead_guard` serve budget
    /// bounds: two staged appends and a histogram record — no
    /// formatting and no I/O; [`maintenance_flush`](Self::maintenance_flush)
    /// renders and writes the lines off the request thread.
    fn observe(&self, route: usize, elapsed: Duration, detail: Option<(&Request, &Response)>) {
        let us = elapsed.as_micros().min(u128::from(u64::MAX)) as u64;
        if self.rolling_enabled {
            self.rolling[route].record(us);
        }
        self.latency[route].record(us);
        let (Some(log), Some((req, resp))) = (&self.access_log, detail) else {
            return;
        };
        if !log.admit() {
            self.log_suppressed.inc();
            return;
        }
        let rec = AccessRecord {
            ts_ms: log.now_ms(),
            us,
            bytes: resp.body.len() as u64,
            ks_ppm: self.last_ks_ppm.get(),
            status: resp.status,
            route: route as u8,
            method: SmallStr::copy(&req.method),
            path: SmallStr::copy(req.path()),
            cache: SmallStr::copy(resp.extra_header("X-Banyan-Cache").unwrap_or("-")),
            source: SmallStr::copy(resp.extra_header("X-Banyan-Source").unwrap_or("-")),
        };
        if log.stage(rec) {
            self.log_lines.inc();
        } else {
            self.log_suppressed.inc();
        }
    }

    /// Remembers an analytically answerable configuration for the
    /// drift monitor (deduplicated by canonical cache key, FIFO beyond
    /// the cap).
    pub fn note_hot(&self, query: &Query) {
        let key = query.cache_key();
        let mut hot = self.hot.lock().expect("hot keys poisoned");
        if hot.iter().any(|(k, _)| *k == key) {
            return;
        }
        if hot.len() == HOT_KEY_CAP {
            hot.remove(0);
        }
        hot.push((key, query.clone()));
    }

    /// Snapshot of the hot configurations (key order = insertion).
    pub fn hot_queries(&self) -> Vec<(String, Query)> {
        self.hot.lock().expect("hot keys poisoned").clone()
    }

    /// Flushes staged rolling observations and the access log — the
    /// drift monitor calls this every poll so log lines become durable
    /// and staging stays small even without scrapes.
    pub fn maintenance_flush(&self) {
        for r in &self.rolling {
            r.flush();
        }
        if let Some(log) = &self.access_log {
            log.flush();
        }
    }

    /// Renders the full `/metrics` scrape: uptime, the whole registry
    /// (counters, gauges, histograms with explicit overflow), and the
    /// rolling-window families for every route with traffic.
    pub fn render_metrics(&self, tel: &Telemetry) -> String {
        let mut e = Exposition::new();
        e.gauge(
            "serve.uptime_seconds",
            "seconds since the daemon started",
            self.uptime().as_secs_f64(),
        );
        e.registry(tel.registry());
        if self.rolling_enabled {
            let mut route_snaps = Vec::new();
            for (i, &route) in ROUTES.iter().enumerate() {
                if self.rolling[i].total_count() > 0 {
                    route_snaps.push((route, self.rolling[i].snapshot()));
                }
            }
            if !route_snaps.is_empty() {
                let lat = e.gauge_family(
                    "serve.rolling.latency_us",
                    "rolling-window latency quantiles in microseconds",
                );
                for (route, snaps) in &route_snaps {
                    for snap in snaps {
                        for (label, value) in QUANTILE_LABELS.iter().zip(snap.quantiles) {
                            e.sample(
                                &lat,
                                &[
                                    ("route", route),
                                    ("window", snap.spec.label),
                                    ("quantile", label),
                                ],
                                value,
                            );
                        }
                    }
                }
                let rate = e.gauge_family(
                    "serve.rolling.requests_per_sec",
                    "request rate over each rolling window",
                );
                for (route, snaps) in &route_snaps {
                    for snap in snaps {
                        e.sample(
                            &rate,
                            &[("route", route), ("window", snap.spec.label)],
                            snap.rate_per_sec,
                        );
                    }
                }
            }
        }
        e.finish()
    }

    /// The `/statusz` per-route section: every route with traffic,
    /// every window, count/qps/max plus the quantile estimates.
    pub fn routes_status_json(&self) -> String {
        let mut routes = JsonObject::new();
        for (i, &route) in ROUTES.iter().enumerate() {
            if self.rolling[i].total_count() == 0 {
                continue;
            }
            let mut windows = JsonObject::new();
            for snap in self.rolling[i].snapshot() {
                let mut w = JsonObject::new();
                w.field_u64("count", snap.count)
                    .field_f64("qps", snap.rate_per_sec)
                    .field_f64("mean_us", snap.mean())
                    .field_u64("max_us", snap.max);
                for (label, value) in QUANTILE_LABELS.iter().zip(snap.quantiles) {
                    w.field_f64(&format!("{label}_us"), value);
                }
                w.field_u64("quantile_count", snap.quantile_count)
                    .field_raw("complete", if snap.complete { "true" } else { "false" });
                windows.field_raw(snap.spec.label, &w.finish());
            }
            routes.field_raw(route, &windows.finish());
        }
        routes.finish()
    }

    /// Publishes the rolling aggregates as `serve.rolling.*` gauges —
    /// called at shutdown so run manifests carry the final window
    /// state, validated by `manifest_check`.
    pub fn publish_rolling_gauges(&self, registry: &Registry) {
        for (i, &route) in ROUTES.iter().enumerate() {
            if self.rolling[i].total_count() == 0 {
                continue;
            }
            for snap in self.rolling[i].snapshot() {
                let prefix = format!("serve.rolling.{route}.{}", snap.spec.label);
                registry.gauge(&format!("{prefix}.count")).set(snap.count);
                registry.gauge(&format!("{prefix}.max_us")).set(snap.max);
                for (label, value) in QUANTILE_LABELS.iter().zip(snap.quantiles) {
                    registry
                        .gauge(&format!("{prefix}.{label}_us"))
                        .set(value.round().max(0.0) as u64);
                }
            }
        }
    }
}

impl std::fmt::Debug for OpsPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpsPlane")
            .field("rolling_enabled", &self.rolling_enabled)
            .field("access_log", &self.access_log.is_some())
            .finish_non_exhaustive()
    }
}

/// RAII per-request timer. [`finish`](Self::finish) records the full
/// observation (latency + access-log line); if the guard is dropped
/// without finishing (a panicking route), the latency alone is still
/// recorded.
pub struct RequestTimer<'a> {
    ops: &'a OpsPlane,
    route: usize,
    started: Instant,
    finished: bool,
}

impl RequestTimer<'_> {
    /// Completes the observation with the request/response pair.
    pub fn finish(mut self, req: &Request, resp: &Response) {
        self.finished = true;
        self.ops
            .observe(self.route, self.started.elapsed(), Some((req, resp)));
    }
}

impl Drop for RequestTimer<'_> {
    fn drop(&mut self) {
        if !self.finished {
            self.ops.observe(self.route, self.started.elapsed(), None);
        }
    }
}

/// Staged records the access log accepts before dropping new ones
/// (counted as suppressed) until a flush drains the backlog — bounds
/// memory when no maintenance thread is running.
const LOG_STAGING_CAP: usize = 1 << 16;

/// A string field of a staged access-log record. Routes, methods, and
/// answer sources all fit inline; an oversized path (the one field a
/// client controls) spills to the heap.
enum SmallStr {
    Inline { len: u8, bytes: [u8; 22] },
    Heap(String),
}

impl SmallStr {
    fn copy(s: &str) -> SmallStr {
        if s.len() <= 22 {
            let mut bytes = [0u8; 22];
            bytes[..s.len()].copy_from_slice(s.as_bytes());
            SmallStr::Inline {
                len: s.len() as u8,
                bytes,
            }
        } else {
            SmallStr::Heap(s.to_string())
        }
    }

    fn as_str(&self) -> &str {
        match self {
            SmallStr::Inline { len, bytes } => std::str::from_utf8(&bytes[..usize::from(*len)])
                .expect("inline bytes copied from a str"),
            SmallStr::Heap(s) => s,
        }
    }
}

/// One staged access-log observation, captured on the request thread
/// and rendered to JSON by [`AccessLog::flush`].
struct AccessRecord {
    ts_ms: u64,
    us: u64,
    bytes: u64,
    ks_ppm: u64,
    status: u16,
    route: u8,
    method: SmallStr,
    path: SmallStr,
    cache: SmallStr,
    source: SmallStr,
}

/// The structured JSON access log: one object per line, with optional
/// rate-limited sampling through the shared [`RateLimiter`] (first
/// line always emitted; at most one line per sample interval
/// thereafter — suppressed lines are counted, never blocked on).
/// Request threads stage compact records; formatting and file I/O
/// happen on whoever calls [`flush`](Self::flush) — the drift monitor
/// at its poll cadence, or the shutdown path.
struct AccessLog {
    writer: Mutex<BufWriter<File>>,
    staged: Mutex<Vec<AccessRecord>>,
    limiter: Option<RateLimiter>,
    epoch_ms: u64,
    opened: Instant,
}

impl AccessLog {
    fn open(path: &str, sample_ms: u64) -> std::io::Result<AccessLog> {
        let file = File::create(path)?;
        Ok(AccessLog {
            writer: Mutex::new(BufWriter::new(file)),
            staged: Mutex::new(Vec::new()),
            limiter: (sample_ms > 0).then(|| RateLimiter::new(Duration::from_millis(sample_ms))),
            epoch_ms: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_millis().min(u128::from(u64::MAX)) as u64)
                .unwrap_or(0),
            opened: Instant::now(),
        })
    }

    /// Wall-clock milliseconds without a per-line `SystemTime` call.
    fn now_ms(&self) -> u64 {
        self.epoch_ms + self.opened.elapsed().as_millis() as u64
    }

    fn admit(&self) -> bool {
        self.limiter.as_ref().is_none_or(RateLimiter::allow)
    }

    /// Appends one record to the staging buffer; `false` means the
    /// backlog is at [`LOG_STAGING_CAP`] and the record was dropped.
    fn stage(&self, rec: AccessRecord) -> bool {
        let mut staged = self.staged.lock().expect("access staging poisoned");
        if staged.len() >= LOG_STAGING_CAP {
            return false;
        }
        staged.push(rec);
        true
    }

    /// Drains the staged records, rendering each as one JSON line into
    /// a reused buffer, and flushes the file.
    fn flush(&self) {
        let records = std::mem::take(&mut *self.staged.lock().expect("access staging poisoned"));
        let mut w = self.writer.lock().expect("access log poisoned");
        LINE_BUF.with_borrow_mut(|buf| {
            for rec in &records {
                buf.clear();
                buf.push_str("{\"schema\": \"banyan-serve/access/v1\", \"ts_ms\": ");
                push_u64(buf, rec.ts_ms);
                buf.push_str(", \"route\": \"");
                buf.push_str(ROUTES[usize::from(rec.route)]);
                buf.push_str("\", \"method\": \"");
                push_escaped(buf, rec.method.as_str());
                buf.push_str("\", \"path\": \"");
                push_escaped(buf, rec.path.as_str());
                buf.push_str("\", \"status\": ");
                push_u64(buf, u64::from(rec.status));
                buf.push_str(", \"bytes\": ");
                push_u64(buf, rec.bytes);
                buf.push_str(", \"us\": ");
                push_u64(buf, rec.us);
                buf.push_str(", \"cache\": \"");
                buf.push_str(rec.cache.as_str());
                buf.push_str("\", \"source\": \"");
                buf.push_str(rec.source.as_str());
                buf.push_str("\", \"ks_ppm\": ");
                push_u64(buf, rec.ks_ppm);
                buf.push_str("}\n");
                let _ = w.write_all(buf.as_bytes());
            }
        });
        let _ = w.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_labels_cover_the_surface() {
        assert_eq!(ROUTES[route_index("/query")], "query");
        assert_eq!(ROUTES[route_index("/v1/flow")], "flow");
        assert_eq!(ROUTES[route_index("/v1/batch")], "batch");
        assert_eq!(ROUTES[route_index("/metrics")], "metrics");
        assert_eq!(ROUTES[route_index("/statusz")], "statusz");
        assert_eq!(ROUTES[route_index("/healthz")], "healthz");
        assert_eq!(ROUTES[route_index("/readyz")], "readyz");
        assert_eq!(ROUTES[route_index("/shutdown")], "shutdown");
        assert_eq!(ROUTES[route_index("/nope")], "other");
    }

    #[test]
    fn hot_keys_dedup_and_cap() {
        let reg = Registry::new();
        let ops = OpsPlane::new(&reg, true, None, 0).unwrap();
        for stages in 1..=12u32 {
            let q = Query::from_json(&format!("{{\"k\":2,\"stages\":{stages},\"p\":0.3}}"))
                .unwrap();
            ops.note_hot(&q);
            ops.note_hot(&q); // duplicate: ignored
        }
        let hot = ops.hot_queries();
        assert_eq!(hot.len(), HOT_KEY_CAP);
        // FIFO: the oldest entries (stages 1..=4) were evicted.
        assert!(hot[0].0.contains("n=5"), "{:?}", hot[0].0);
        assert!(hot.last().unwrap().0.contains("n=12"));
    }

    #[test]
    fn observe_feeds_rolling_histogram_and_statusz() {
        let reg = Registry::new();
        let ops = OpsPlane::new(&reg, true, None, 0).unwrap();
        let route = route_index("/query");
        for _ in 0..3 {
            ops.observe(route, Duration::from_micros(300), None);
        }
        let status = ops.routes_status_json();
        assert!(status.contains("\"query\""), "{status}");
        assert!(status.contains("\"1s\"") && status.contains("\"60s\""), "{status}");
        assert_eq!(ops.latency[route].count(), 3);
        // The metrics render includes the rolling families.
        let tel = Telemetry::new(banyan_obs::TelemetryConfig::on());
        let scrape = ops.render_metrics(&tel);
        assert!(scrape.contains("# TYPE serve_rolling_latency_us gauge"), "{scrape}");
        assert!(
            scrape.contains("serve_rolling_latency_us{route=\"query\",window=\"1s\",quantile=\"p50\"}"),
            "{scrape}"
        );
        assert!(scrape.contains("serve_uptime_seconds"), "{scrape}");
    }

    #[test]
    fn rolling_disabled_skips_windows_but_keeps_histograms() {
        let reg = Registry::new();
        let ops = OpsPlane::new(&reg, false, None, 0).unwrap();
        let route = route_index("/query");
        ops.observe(route, Duration::from_micros(100), None);
        assert_eq!(ops.rolling[route].total_count(), 0);
        assert_eq!(ops.latency[route].count(), 1);
        assert_eq!(ops.routes_status_json(), "{}");
    }

    #[test]
    fn publish_rolling_gauges_lands_in_manifest_namespace() {
        let reg = Registry::new();
        let ops = OpsPlane::new(&reg, true, None, 0).unwrap();
        ops.observe(route_index("/query"), Duration::from_micros(250), None);
        ops.publish_rolling_gauges(&reg);
        let snap = reg.snapshot_json();
        assert!(snap.contains("serve.rolling.query.1s.count"), "{snap}");
        assert!(snap.contains("serve.rolling.query.60s.p999_us"), "{snap}");
    }
}
