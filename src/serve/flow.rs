//! Feed-forward flow queries: decode, canonicalization, and the
//! bit-stable `/v1/flow` answer body.
//!
//! A flow query names a built-in topology (`mesh`, `omega`,
//! `butterfly`, `fat-tree`) plus its dimensions and workload, and the
//! answer reports every routed flow's end-to-end waiting/delay
//! statistics from the `banyan-flow` analytic engine. The renderer is
//! shared verbatim with `banyan flow --json`, so the CLI output and the
//! served body are byte-identical — the same `fmt_f64`
//! shortest-round-trip contract as `/query` answers.

use super::answer::{LEVELS, LEVEL_LABELS};
use super::query::{flags_from_query_string, flags_from_value};
use crate::cli::{get, get_prob, validate_flags, Flags};
use banyan_flow::{butterfly, fat_tree, mesh, omega, FlowAnalysis, FlowGraph};
use banyan_obs::json::{JsonObject, JsonValue};

/// Fields a flow query may carry. Dimension fields are per-topology;
/// using one with the wrong `topo` is rejected (see
/// [`FlowQuery::from_flags`]).
pub const FLOW_FIELDS: &[&str] = &[
    "topo", "k", "stages", "extra", "rows", "cols", "leaves", "spines", "hosts", "p", "m",
];

/// Schema identifier of the `/v1/flow` answer body.
pub const FLOW_SCHEMA: &str = "banyan-serve/flow/v1";

/// Terminal-count cap: a topology request may not expand into more
/// endpoints than this (the flows array is rendered in full, and the
/// banyan generators grow as `k^stages` — unbounded dimensions would
/// let one request allocate without limit).
const MAX_TERMINALS: usize = 4_096;

/// Router/host cap for the all-to-all generators (mesh, fat-tree),
/// whose flow count grows quadratically in the endpoint count.
const MAX_ALL_TO_ALL: usize = 64;

/// A validated topology selection with its dimensions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Topo {
    /// `rows × cols` mesh, XY routing, all-to-all uniform traffic.
    Mesh {
        /// Mesh rows.
        rows: usize,
        /// Mesh columns.
        cols: usize,
    },
    /// `stages`-stage omega network of `k × k` switches (identity
    /// permutation).
    Omega {
        /// Switch arity.
        k: u32,
        /// Stage count.
        stages: u32,
    },
    /// `k`-ary butterfly on `k^stages` wires with `extra` straight
    /// stages prepended.
    Butterfly {
        /// Switch arity.
        k: u32,
        /// Butterfly stages.
        stages: u32,
        /// Extra straight stages.
        extra: u32,
    },
    /// Two-level fat-tree, all-to-all uniform host traffic.
    FatTree {
        /// Leaf switches.
        leaves: usize,
        /// Spine switches.
        spines: usize,
        /// Hosts per leaf.
        hosts: usize,
    },
}

impl Topo {
    /// Canonical label used in cache keys and response bodies.
    pub fn label(&self) -> String {
        match self {
            Topo::Mesh { rows, cols } => format!("mesh:rows={rows},cols={cols}"),
            Topo::Omega { k, stages } => format!("omega:k={k},n={stages}"),
            Topo::Butterfly { k, stages, extra } => {
                format!("butterfly:k={k},n={stages},extra={extra}")
            }
            Topo::FatTree {
                leaves,
                spines,
                hosts,
            } => format!("fat-tree:leaves={leaves},spines={spines},hosts={hosts}"),
        }
    }
}

/// A validated flow query.
#[derive(Clone, Debug)]
pub struct FlowQuery {
    /// Topology and dimensions.
    pub topo: Topo,
    /// Per-terminal injection probability.
    pub p: f64,
    /// Constant message size (cycles).
    pub m: u32,
}

/// The dimension fields each topology accepts; anything else present is
/// an error naming the offending flag.
fn check_dims(flags: &Flags, topo: &str, allowed: &[&str]) -> Result<(), String> {
    const DIMS: &[&str] = &["k", "stages", "extra", "rows", "cols", "leaves", "spines", "hosts"];
    for d in DIMS {
        if flags.contains_key(*d) && !allowed.contains(d) {
            return Err(format!("--{d} does not apply to --topo {topo}"));
        }
    }
    Ok(())
}

impl FlowQuery {
    /// Validates a flags map into a flow query — the single decode path
    /// behind JSON bodies, query strings, and the `banyan flow` CLI.
    pub fn from_flags(flags: &Flags) -> Result<FlowQuery, String> {
        validate_flags(flags, FLOW_FIELDS)?;
        let p = get_prob(flags, "p", 0.5)?;
        let m: u32 = get(flags, "m", 1)?;
        if m == 0 {
            return Err("--m must be at least 1".to_string());
        }
        let topo_name = flags.get("topo").map(String::as_str).unwrap_or("mesh");
        let topo = match topo_name {
            "mesh" => {
                check_dims(flags, "mesh", &["rows", "cols"])?;
                let rows: usize = get(flags, "rows", 2)?;
                let cols: usize = get(flags, "cols", 2)?;
                // checked_mul: a wrapping product could slip under the
                // cap and reach the generator with absurd dimensions.
                let routers = rows.checked_mul(cols).filter(|&n| n <= MAX_ALL_TO_ALL);
                let Some(routers) = routers else {
                    return Err(format!(
                        "mesh of {rows}×{cols} routers exceeds the {MAX_ALL_TO_ALL}-router cap"
                    ));
                };
                if routers < 2 {
                    return Err("mesh needs at least two routers".to_string());
                }
                Topo::Mesh { rows, cols }
            }
            "omega" | "butterfly" => {
                let allowed: &[&str] = if topo_name == "omega" {
                    &["k", "stages"]
                } else {
                    &["k", "stages", "extra"]
                };
                check_dims(flags, topo_name, allowed)?;
                let k: u32 = get(flags, "k", 2)?;
                if k < 2 {
                    return Err(format!("--k must be at least 2, got {k}"));
                }
                let stages: u32 = get(flags, "stages", 3)?;
                if stages == 0 {
                    return Err("--stages must be at least 1".to_string());
                }
                let wires = (k as usize).checked_pow(stages);
                if wires.is_none_or(|w| w > MAX_TERMINALS) {
                    return Err(format!(
                        "k^stages terminals exceed the {MAX_TERMINALS}-terminal cap"
                    ));
                }
                if topo_name == "omega" {
                    Topo::Omega { k, stages }
                } else {
                    let extra: u32 = get(flags, "extra", 0)?;
                    if extra > 16 {
                        return Err(format!("--extra must be at most 16, got {extra}"));
                    }
                    Topo::Butterfly { k, stages, extra }
                }
            }
            "fat-tree" => {
                check_dims(flags, "fat-tree", &["leaves", "spines", "hosts"])?;
                let leaves: usize = get(flags, "leaves", 2)?;
                let spines: usize = get(flags, "spines", 2)?;
                let hosts: usize = get(flags, "hosts", 2)?;
                if leaves < 2 || spines < 1 || hosts < 1 {
                    return Err(
                        "fat-tree needs --leaves >= 2, --spines >= 1, --hosts >= 1".to_string()
                    );
                }
                let within_cap = leaves
                    .checked_mul(hosts)
                    .is_some_and(|n| n <= MAX_ALL_TO_ALL);
                if !within_cap || spines > MAX_ALL_TO_ALL {
                    return Err(format!(
                        "fat-tree of {leaves}×{hosts} hosts exceeds the {MAX_ALL_TO_ALL}-host cap"
                    ));
                }
                Topo::FatTree {
                    leaves,
                    spines,
                    hosts,
                }
            }
            other => {
                return Err(format!(
                    "--topo must be mesh, omega, butterfly, or fat-tree, got '{other}'"
                ));
            }
        };
        Ok(FlowQuery { topo, p, m })
    }

    /// Decodes a JSON object body.
    pub fn from_json(text: &str) -> Result<FlowQuery, String> {
        let doc = JsonValue::parse(text).map_err(|e| format!("invalid JSON body: {e}"))?;
        FlowQuery::from_value(&doc)
    }

    /// Decodes an already-parsed JSON object (one `/v1/batch` element).
    pub fn from_value(doc: &JsonValue) -> Result<FlowQuery, String> {
        FlowQuery::from_flags(&flags_from_value(doc)?)
    }

    /// Decodes a `topo=mesh&rows=2`-style query string.
    pub fn from_query_string(qs: &str) -> Result<FlowQuery, String> {
        FlowQuery::from_flags(&flags_from_query_string(qs)?)
    }

    /// Canonical answer-cache key. The `flow:` prefix keeps the flow
    /// keyspace disjoint from `/query` keys in the shared cache.
    pub fn cache_key(&self) -> String {
        format!("flow:{};p={};m={}", self.topo.label(), self.p, self.m)
    }

    /// Builds the routed graph this query describes.
    pub fn build_graph(&self) -> FlowGraph {
        match self.topo {
            Topo::Mesh { rows, cols } => mesh(rows, cols, self.p, self.m),
            Topo::Omega { k, stages } => omega(k, stages, self.p, self.m),
            Topo::Butterfly { k, stages, extra } => butterfly(k, stages, extra, self.p, self.m),
            Topo::FatTree {
                leaves,
                spines,
                hosts,
            } => fat_tree(leaves, spines, hosts, self.p, self.m),
        }
    }
}

/// Computes and renders the full `/v1/flow` answer: builds the graph,
/// runs the analytic engine (an unstable link is the one recoverable
/// error → `422` upstream), and renders every flow's statistics with
/// `fmt_f64` bit-stability. `banyan flow --json` prints exactly this
/// string.
pub fn flow_body(q: &FlowQuery) -> Result<String, String> {
    let graph = q.build_graph();
    let an = FlowAnalysis::new(&graph)?;
    let mut o = JsonObject::new();
    o.field_str("schema", FLOW_SCHEMA)
        .field_str("source", "flow-analytic")
        .field_str("topo", &q.topo.label());
    let mut cfg = JsonObject::new();
    cfg.field_f64("p", q.p).field_u64("m", u64::from(q.m));
    o.field_raw("config", &cfg.finish());
    o.field_u64("nodes", graph.nodes().len() as u64)
        .field_u64("links", graph.links().len() as u64)
        .field_u64("flows", graph.flows().len() as u64);
    let mut rows = Vec::with_capacity(graph.flows().len());
    for (f, flow) in graph.flows().iter().enumerate() {
        let mut row = JsonObject::new();
        row.field_u64("id", f as u64)
            .field_str("src", &graph.nodes()[flow.src].name)
            .field_str("dst", &graph.nodes()[flow.dst].name)
            .field_u64("hops", flow.path.len() as u64)
            .field_f64("rate", flow.rate);
        let gamma = an.gamma(f);
        let mut wait = JsonObject::new();
        wait.field_f64("mean", an.mean_wait(f))
            .field_f64("var", an.var_wait(f));
        for (label, level) in LEVEL_LABELS.iter().zip(LEVELS) {
            let v = gamma.as_ref().map_or(0.0, |g| g.quantile(level));
            wait.field_f64(label, v);
        }
        row.field_raw("wait", &wait.finish());
        let mut delay = JsonObject::new();
        delay.field_f64("mean", an.mean_delay(f));
        for (label, level) in LEVEL_LABELS.iter().zip(LEVELS) {
            delay.field_f64(label, an.delay_quantile(f, level));
        }
        row.field_raw("delay", &delay.finish());
        rows.push(row.finish());
    }
    o.field_raw("per_flow", &format!("[{}]", rows.join(", ")));
    let mut body = o.finish();
    body.push('\n');
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_query_string_and_flags_agree() {
        let a = FlowQuery::from_json(r#"{"topo": "mesh", "rows": 2, "cols": 2, "p": 0.5}"#).unwrap();
        let b = FlowQuery::from_query_string("topo=mesh&rows=2&cols=2&p=0.5").unwrap();
        assert_eq!(a.cache_key(), b.cache_key());
        assert_eq!(a.topo, Topo::Mesh { rows: 2, cols: 2 });
    }

    #[test]
    fn defaults_are_the_acceptance_mesh() {
        let q = FlowQuery::from_query_string("").unwrap();
        assert_eq!(q.topo, Topo::Mesh { rows: 2, cols: 2 });
        assert_eq!(q.cache_key(), "flow:mesh:rows=2,cols=2;p=0.5;m=1");
    }

    #[test]
    fn foreign_dimensions_are_rejected() {
        let err = FlowQuery::from_query_string("topo=omega&rows=2").unwrap_err();
        assert!(err.contains("--rows does not apply"), "{err}");
        let err = FlowQuery::from_query_string("topo=mesh&k=2").unwrap_err();
        assert!(err.contains("--k does not apply"), "{err}");
        let err = FlowQuery::from_query_string("topo=omega&extra=1").unwrap_err();
        assert!(err.contains("--extra does not apply"), "{err}");
    }

    #[test]
    fn oversized_topologies_are_rejected() {
        assert!(FlowQuery::from_query_string("topo=omega&k=4&stages=9")
            .unwrap_err()
            .contains("terminal cap"));
        assert!(FlowQuery::from_query_string("topo=mesh&rows=9&cols=9")
            .unwrap_err()
            .contains("router cap"));
        assert!(FlowQuery::from_query_string("topo=fat-tree&leaves=40&hosts=2")
            .unwrap_err()
            .contains("host cap"));
        // checked_pow overflow must fail cleanly, not panic.
        assert!(FlowQuery::from_query_string("topo=omega&k=2&stages=4000000000").is_err());
        // Dimension products that wrap usize must hit the cap error, not
        // slip under it (2 × (2^63 + 1) wraps to 2).
        assert!(
            FlowQuery::from_query_string("topo=mesh&rows=2&cols=9223372036854775809")
                .unwrap_err()
                .contains("router cap")
        );
        assert!(
            FlowQuery::from_query_string("topo=fat-tree&leaves=9223372036854775809&hosts=2")
                .unwrap_err()
                .contains("host cap")
        );
    }

    #[test]
    fn unknown_fields_and_values_get_clean_errors() {
        assert!(FlowQuery::from_query_string("topo=torus").unwrap_err().contains("--topo"));
        assert!(FlowQuery::from_query_string("p=1.5").is_err());
        assert!(FlowQuery::from_query_string("m=0").is_err());
        assert!(FlowQuery::from_json("[1]").unwrap_err().contains("object"));
        let err = FlowQuery::from_query_string("topoo=mesh").unwrap_err();
        assert!(err.contains("did you mean --topo?"), "{err}");
    }

    #[test]
    fn unstable_load_surfaces_from_the_engine() {
        // p = 1.0 puts every mesh ejection port at ρ = 1.
        let q = FlowQuery::from_query_string("topo=mesh&p=1").unwrap();
        assert!(flow_body(&q).is_err());
    }

    #[test]
    fn body_is_complete_and_reparses() {
        let q = FlowQuery::from_query_string("topo=mesh&rows=2&cols=2&p=0.5").unwrap();
        let body = flow_body(&q).unwrap();
        let doc = JsonValue::parse(&body).unwrap();
        assert_eq!(doc.get("schema").and_then(JsonValue::as_str), Some(FLOW_SCHEMA));
        assert_eq!(doc.get("flows").and_then(JsonValue::as_u64), Some(12));
        let rows = doc.get("per_flow").and_then(JsonValue::as_array).unwrap();
        assert_eq!(rows.len(), 12);
        let g = q.build_graph();
        let an = FlowAnalysis::new(&g).unwrap();
        let mean = rows[0]
            .get("wait")
            .and_then(|w| w.get("mean"))
            .and_then(JsonValue::as_f64)
            .unwrap();
        assert_eq!(mean.to_bits(), an.mean_wait(0).to_bits());
    }
}
