//! Hand-rolled HTTP/1.1 — just enough protocol for the capacity daemon.
//!
//! The server side parses a request line, headers, and a
//! `Content-Length` body from a buffered stream and writes framed
//! responses with explicit keep-alive handling. The client side
//! ([`Client`]) issues keep-alive requests over one connection; it
//! exists for the integration tests and the `bench_serve` load client,
//! so the daemon is exercised through the same wire format it serves.
//!
//! Deliberately out of scope (answered with `501`): chunked transfer
//! encoding, multipart bodies, TLS. The daemon speaks plain `HTTP/1.1`
//! and `HTTP/1.0` with `Content-Length` framing only.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Default cap on request bodies; larger requests get `413`.
pub const DEFAULT_MAX_BODY_BYTES: usize = 64 * 1024;
/// Cap on any single request/status/header line.
const MAX_LINE_BYTES: usize = 8 * 1024;
/// Cap on the number of headers per message.
const MAX_HEADERS: usize = 64;

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Method verb, e.g. `GET`.
    pub method: String,
    /// Request target as sent, e.g. `/query?k=2&p=0.5`.
    pub target: String,
    /// Header `(name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    keep_alive: bool,
}

impl Request {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection should stay open after the response.
    pub fn keep_alive(&self) -> bool {
        self.keep_alive
    }

    /// Target path with any query string stripped.
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }

    /// Query-string portion of the target, if present.
    pub fn query_string(&self) -> Option<&str> {
        self.target.split_once('?').map(|(_, q)| q)
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// Peer closed before sending a request line — a clean end of a
    /// keep-alive connection, not an error.
    Closed,
    /// Malformed request; respond `400` and close.
    Bad(String),
    /// Declared body exceeds the configured cap; respond `413`.
    TooLarge(usize),
    /// Valid HTTP the daemon does not speak; respond `501`.
    Unsupported(String),
    /// Transport failure (timeout, reset); close silently.
    Io(std::io::Error),
}

/// Reads one CRLF- (or LF-) terminated line, without the terminator.
/// `None` means clean EOF before any byte.
fn read_line(reader: &mut impl BufRead) -> Result<Option<String>, HttpError> {
    let mut buf = Vec::new();
    let n = reader
        .by_ref()
        .take(MAX_LINE_BYTES as u64 + 1)
        .read_until(b'\n', &mut buf)
        .map_err(HttpError::Io)?;
    if n == 0 {
        return Ok(None);
    }
    if buf.len() > MAX_LINE_BYTES {
        return Err(HttpError::Bad(format!(
            "line exceeds {MAX_LINE_BYTES} bytes"
        )));
    }
    if buf.last() == Some(&b'\n') {
        buf.pop();
        if buf.last() == Some(&b'\r') {
            buf.pop();
        }
    } else {
        // EOF mid-line.
        return Err(HttpError::Bad("truncated line".to_string()));
    }
    String::from_utf8(buf).map(Some).map_err(|_| {
        HttpError::Bad("line is not valid UTF-8".to_string())
    })
}

/// Reads and validates one request from the stream.
pub fn read_request(
    reader: &mut impl BufRead,
    max_body: usize,
) -> Result<Request, HttpError> {
    let line = match read_line(reader)? {
        None => return Err(HttpError::Closed),
        Some(l) => l,
    };
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next())
    {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(HttpError::Bad(format!("malformed request line '{line}'")));
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::Bad(format!("unsupported version '{version}'")));
    }
    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let line = match read_line(reader)? {
            None => return Err(HttpError::Bad("truncated headers".to_string())),
            Some(l) => l,
        };
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::Bad(format!("more than {MAX_HEADERS} headers")));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Bad(format!("malformed header '{line}'")))?;
        headers.push((name.trim().to_string(), value.trim().to_string()));
    }
    let mut req = Request {
        method: method.to_string(),
        target: target.to_string(),
        headers,
        body: Vec::new(),
        keep_alive: version == "HTTP/1.1",
    };
    match req.header("connection").map(str::to_ascii_lowercase) {
        Some(c) if c == "close" => req.keep_alive = false,
        Some(c) if c == "keep-alive" => req.keep_alive = true,
        _ => {}
    }
    if req.header("transfer-encoding").is_some() {
        return Err(HttpError::Unsupported(
            "transfer-encoding is not supported; use content-length".to_string(),
        ));
    }
    if let Some(len) = req.header("content-length") {
        let len: usize = len
            .parse()
            .map_err(|_| HttpError::Bad(format!("bad content-length '{len}'")))?;
        if len > max_body {
            return Err(HttpError::TooLarge(max_body));
        }
        let mut body = vec![0u8; len];
        reader.read_exact(&mut body).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                HttpError::Bad("body shorter than content-length".to_string())
            } else {
                HttpError::Io(e)
            }
        })?;
        req.body = body;
    }
    Ok(req)
}

/// One response to write.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body (already rendered).
    pub body: String,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra headers, e.g. `X-Banyan-Cache`.
    pub extra_headers: Vec<(String, String)>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            body,
            content_type: "application/json",
            extra_headers: Vec::new(),
        }
    }

    /// A Prometheus text-exposition response (`GET /metrics`).
    pub fn exposition(status: u16, body: String) -> Self {
        Response {
            status,
            body,
            content_type: banyan_obs::expo::CONTENT_TYPE,
            extra_headers: Vec::new(),
        }
    }

    /// A JSON error response with a single `error` field.
    pub fn error(status: u16, message: &str) -> Self {
        Self::json(
            status,
            format!("{{\"error\": \"{}\"}}\n", banyan_obs::json::escape(message)),
        )
    }

    /// Attaches an extra header.
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.extra_headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Value of an attached extra header (case-insensitive name).
    pub fn extra_header(&self, name: &str) -> Option<&str> {
        self.extra_headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Reason phrase for the status codes the daemon emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes `resp` with explicit framing; `keep_alive` selects the
/// `Connection` header.
pub fn write_response(
    stream: &mut impl Write,
    resp: &Response,
    keep_alive: bool,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in &resp.extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(resp.body.as_bytes())?;
    stream.flush()
}

/// A minimal keep-alive HTTP client over one connection, used by the
/// integration tests and the `bench_serve` load generator.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
}

/// A response as seen by [`Client`].
#[derive(Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Header `(name, value)` pairs (names lowercased).
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: String,
}

impl ClientResponse {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

impl Client {
    /// Connects to `addr` (e.g. `127.0.0.1:7070`).
    pub fn connect(addr: &str) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client {
            reader: BufReader::new(stream),
        })
    }

    /// Issues one keep-alive request and reads the framed response.
    pub fn request(
        &mut self,
        method: &str,
        target: &str,
        body: Option<&str>,
    ) -> std::io::Result<ClientResponse> {
        let body = body.unwrap_or("");
        let head = format!(
            "{method} {target} HTTP/1.1\r\nhost: banyan\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        {
            let mut stream = self.reader.get_ref();
            stream.write_all(head.as_bytes())?;
            stream.write_all(body.as_bytes())?;
            stream.flush()?;
        }
        self.read_response()
    }

    fn read_response(&mut self) -> std::io::Result<ClientResponse> {
        let bad = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_string());
        let status_line = match read_line(&mut self.reader) {
            Ok(Some(l)) => l,
            Ok(None) => return Err(bad("connection closed before status line")),
            Err(HttpError::Io(e)) => return Err(e),
            Err(e) => return Err(bad(&format!("{e:?}"))),
        };
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad(&format!("bad status line '{status_line}'")))?;
        let mut headers = Vec::new();
        let mut content_length = 0usize;
        loop {
            let line = match read_line(&mut self.reader) {
                Ok(Some(l)) => l,
                Ok(None) => return Err(bad("connection closed in headers")),
                Err(HttpError::Io(e)) => return Err(e),
                Err(e) => return Err(bad(&format!("{e:?}"))),
            };
            if line.is_empty() {
                break;
            }
            if let Some((n, v)) = line.split_once(':') {
                headers.push((n.trim().to_ascii_lowercase(), v.trim().to_string()));
                if n.trim().eq_ignore_ascii_case("content-length") {
                    content_length = v.trim().parse().map_err(|_| bad("bad content-length"))?;
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        Ok(ClientResponse {
            status,
            headers,
            body: String::from_utf8(body)
                .map_err(|_| bad("response body is not valid UTF-8"))?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        let mut reader = Cursor::new(raw.as_bytes().to_vec());
        read_request(&mut reader, DEFAULT_MAX_BODY_BYTES)
    }

    #[test]
    fn parses_get_with_query_string() {
        let req = parse("GET /query?k=2&p=0.5 HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path(), "/query");
        assert_eq!(req.query_string(), Some("k=2&p=0.5"));
        assert!(req.keep_alive());
        assert_eq!(req.header("host"), Some("x"));
    }

    #[test]
    fn parses_post_with_body() {
        let req =
            parse("POST /query HTTP/1.1\r\nContent-Length: 7\r\n\r\n{\"k\":2}").unwrap();
        assert_eq!(req.body, b"{\"k\":2}");
    }

    #[test]
    fn connection_close_and_http10_defaults() {
        let req = parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!req.keep_alive());
        let req = parse("GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!req.keep_alive());
        let req = parse("GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n").unwrap();
        assert!(req.keep_alive());
    }

    #[test]
    fn rejects_malformed_request_lines() {
        for raw in [
            "BOGUS\r\n\r\n",
            "GET /\r\n\r\n",
            "GET / HTTP/2.0\r\n\r\n",
            "GET  /  HTTP/1.1\r\n\r\n",
            "GET / HTTP/1.1 extra\r\n\r\n",
        ] {
            assert!(
                matches!(parse(raw), Err(HttpError::Bad(_))),
                "accepted {raw:?}"
            );
        }
    }

    #[test]
    fn clean_eof_is_closed_not_bad() {
        assert!(matches!(parse(""), Err(HttpError::Closed)));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\n"),
            Err(HttpError::Bad(_))
        ));
    }

    #[test]
    fn oversized_body_is_too_large() {
        let raw = "POST /query HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n";
        assert!(matches!(parse(raw), Err(HttpError::TooLarge(_))));
    }

    #[test]
    fn transfer_encoding_is_unsupported() {
        let raw = "POST /query HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
        assert!(matches!(parse(raw), Err(HttpError::Unsupported(_))));
    }

    #[test]
    fn short_body_is_bad() {
        let raw = "POST /query HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc";
        assert!(matches!(parse(raw), Err(HttpError::Bad(_))));
    }

    #[test]
    fn response_framing_round_trips() {
        let resp = Response::json(200, "{\"ok\": true}".to_string())
            .with_header("X-Banyan-Cache", "hit");
        let mut out = Vec::new();
        write_response(&mut out, &resp, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("content-length: 12\r\n"), "{text}");
        assert!(text.contains("connection: keep-alive\r\n"), "{text}");
        assert!(text.contains("X-Banyan-Cache: hit\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{\"ok\": true}"), "{text}");
    }
}
