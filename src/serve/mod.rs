//! `banyan serve` — the capacity-planning daemon.
//!
//! A zero-dependency HTTP/1.1 server on `std::net::TcpListener` that
//! answers "given this traffic matrix / switch degree / message-size
//! mix, what are E(w), Var(w), p99/p999 end to end?" using the paper's
//! closed forms, with three moving parts:
//!
//! * **One hardened decode path** — requests (JSON bodies or query
//!   strings) validate through the same `cli` flag machinery as the
//!   command line ([`query`]).
//! * **A memoized answer cache** — the canonical rendering of a
//!   validated query keys a FIFO-bounded map of fully rendered
//!   responses ([`cache`]); hits are a map lookup plus a write.
//! * **A drift-gated slow path** — in `auto` mode a small probe
//!   simulation measures the KS distance between observed waiting
//!   times and the closed form (the PR 4 drift gauge); within
//!   threshold the analytic answer is served, otherwise a full
//!   replicated simulation answers ([`answer`]).
//!
//! Beyond `/query`, the daemon answers `/v1/flow` (feed-forward flow
//! queries over the `banyan-flow` engine — [`flow`]) and
//! `POST /v1/batch` (an array of query objects answered in order, each
//! element riding the canonical-key cache individually).
//!
//! The operations plane ([`ops`]) watches all of it: `GET /metrics`
//! renders the Prometheus text exposition, `GET /readyz` gates on the
//! worker pool, cache capacity, and the background drift monitor,
//! `GET /statusz` reports per-route rolling-window latency quantiles,
//! and `--access-log` appends one structured JSON line per request.
//! The daemon also emits `serve.*` counters/gauges, per-request spans,
//! and a `banyan-obs` run manifest on shutdown. See DESIGN.md §9–§10.

pub mod answer;
pub mod cache;
pub mod flow;
pub mod http;
pub mod ops;
pub mod query;

use answer::{analytic_body, probe_drift, run_sim, sim_body, AnalyticModel, SimSettings};
use banyan_obs::json::{JsonObject, JsonValue};
use banyan_obs::{Registry, Telemetry, TelemetryConfig};
use cache::{AnswerCache, CachedAnswer};
use flow::FlowQuery;
use http::{HttpError, Request, Response};
use ops::OpsPlane;
use query::{Mode, Query};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

/// Daemon configuration (all knobs have serviceable defaults).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads (0 = `available_parallelism` clamped to 4..=8).
    /// Workers spend most of their time blocked on connection reads,
    /// so the floor of 4 holds even on single-core hosts: with one
    /// worker, an idle keep-alive connection would pin the whole
    /// daemon until its read timeout fires, starving new connections.
    pub workers: usize,
    /// Answer-cache capacity (entries).
    pub cache_cap: usize,
    /// KS threshold for the drift gate in `auto` mode.
    pub drift_threshold: f64,
    /// Measured cycles per probe replication.
    pub probe_cycles: u64,
    /// Probe replications.
    pub probe_reps: u32,
    /// Measured cycles per full-simulation replication.
    pub sim_cycles: u64,
    /// Full-simulation replications.
    pub sim_reps: u32,
    /// Base RNG seed for embedded simulations.
    pub seed: u64,
    /// Request-body cap; larger bodies get `413`.
    pub max_body_bytes: usize,
    /// Per-connection read timeout in milliseconds (bounds how long an
    /// idle keep-alive connection pins a worker).
    pub read_timeout_ms: u64,
    /// Structured JSON access-log path (`None` disables the log).
    pub access_log: Option<String>,
    /// Minimum interval between access-log lines in milliseconds
    /// (0 = log every request; the first line is always emitted).
    pub access_log_sample_ms: u64,
    /// Separate admin bind address for `/metrics`, `/statusz`,
    /// `/healthz`, `/readyz`, `/shutdown` (`None` = the main listener
    /// serves them too — it always does).
    pub admin_addr: Option<String>,
    /// Drift-monitor poll interval in milliseconds (0 disables the
    /// background re-probe thread; benches set 0 for determinism).
    pub drift_poll_ms: u64,
    /// Rolling-window SLO aggregation on the request path (the
    /// `overhead_guard` off-config disables it).
    pub rolling: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7070".to_string(),
            workers: 0,
            cache_cap: 1024,
            drift_threshold: 0.05,
            probe_cycles: 2_000,
            probe_reps: 2,
            sim_cycles: 20_000,
            sim_reps: 4,
            seed: 0x0BAD_5EED,
            max_body_bytes: http::DEFAULT_MAX_BODY_BYTES,
            read_timeout_ms: 10_000,
            access_log: None,
            access_log_sample_ms: 0,
            admin_addr: None,
            drift_poll_ms: 5_000,
            rolling: true,
        }
    }
}

impl ServeConfig {
    fn worker_count(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .clamp(4, 8)
        }
    }
}

/// State shared by the accept loop and every worker.
pub struct ServerState {
    cfg: ServeConfig,
    tel: Telemetry,
    cache: AnswerCache,
    ops: OpsPlane,
    shutdown: AtomicBool,
    addr: SocketAddr,
    admin_addr: Option<SocketAddr>,
}

impl ServerState {
    /// The daemon's telemetry (metrics, spans, run log) — the manifest
    /// writer reads this after `run` returns.
    pub fn telemetry(&self) -> &Telemetry {
        &self.tel
    }

    /// The daemon's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Bound admin address, when `--admin-port` split the surfaces.
    pub fn admin_addr(&self) -> Option<SocketAddr> {
        self.admin_addr
    }

    /// The operations plane (rolling windows, access log, hot keys).
    pub fn ops(&self) -> &OpsPlane {
        &self.ops
    }

    /// Cached-answer count.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Requests shutdown: sets the flag and wakes every accept loop
    /// with a throwaway connection. Idempotent.
    pub fn request_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        let _ = TcpStream::connect(self.addr);
        if let Some(admin) = self.admin_addr {
            let _ = TcpStream::connect(admin);
        }
    }
}

/// A bound (not yet running) daemon.
pub struct Server {
    listener: TcpListener,
    admin_listener: Option<TcpListener>,
    state: Arc<ServerState>,
}

/// Decrements the live-worker accounting even if the worker panics, so
/// `/readyz` notices a lost worker.
struct WorkerGuard<'a>(&'a Registry);

impl Drop for WorkerGuard<'_> {
    fn drop(&mut self) {
        self.0.counter("serve.workers.exited_total").inc();
    }
}

impl Server {
    /// Binds the configured address(es) and prepares shared state
    /// around the given telemetry sink: the answer cache, the
    /// operations plane (which opens the access log when configured),
    /// and the optional admin listener.
    pub fn bind(cfg: ServeConfig, tel: Telemetry) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let admin_listener = match &cfg.admin_addr {
            Some(a) => Some(TcpListener::bind(a)?),
            None => None,
        };
        let admin_addr = match &admin_listener {
            Some(l) => Some(l.local_addr()?),
            None => None,
        };
        let cache = AnswerCache::new(cfg.cache_cap);
        let ops = OpsPlane::new(
            tel.registry(),
            cfg.rolling,
            cfg.access_log.as_deref(),
            cfg.access_log_sample_ms,
        )?;
        for name in ["serve.workers.started_total", "serve.workers.exited_total"] {
            tel.registry().counter(name);
        }
        let state = Arc::new(ServerState {
            cfg,
            tel,
            cache,
            ops,
            shutdown: AtomicBool::new(false),
            addr,
            admin_addr,
        });
        Ok(Server {
            listener,
            admin_listener,
            state,
        })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Clone of the shared state handle.
    pub fn state(&self) -> Arc<ServerState> {
        Arc::clone(&self.state)
    }

    /// Serves until [`ServerState::request_shutdown`] fires: a fixed
    /// worker pool drains accepted connections from an mpsc channel,
    /// each worker handling batched keep-alive requests per
    /// connection. The optional admin listener feeds the same pool
    /// (its connections tagged admin-only), and the drift monitor
    /// re-probes hot analytic keys in the background.
    pub fn run(self) -> std::io::Result<()> {
        let Server {
            listener,
            admin_listener,
            state,
        } = self;
        let workers = state.cfg.worker_count();
        let result = std::thread::scope(|scope| {
            let (tx, rx) = mpsc::channel::<(TcpStream, bool)>();
            let rx = Arc::new(Mutex::new(rx));
            for _ in 0..workers {
                let rx = Arc::clone(&rx);
                let state = Arc::clone(&state);
                state
                    .tel
                    .registry()
                    .counter("serve.workers.started_total")
                    .inc();
                scope.spawn(move || {
                    let _guard = WorkerGuard(state.tel.registry());
                    loop {
                        // Hold the lock only for the dequeue, never
                        // while serving.
                        let next = rx.lock().expect("receiver poisoned").recv();
                        match next {
                            Ok((stream, admin)) => handle_connection(&state, stream, admin),
                            Err(_) => break,
                        }
                    }
                });
            }
            if let Some(admin) = admin_listener {
                let tx = tx.clone();
                let state = Arc::clone(&state);
                scope.spawn(move || loop {
                    let Ok((stream, _)) = admin.accept() else { break };
                    if state.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let _ = tx.send((stream, true));
                });
            }
            if state.cfg.drift_poll_ms > 0 {
                let state = Arc::clone(&state);
                scope.spawn(move || drift_monitor(&state));
            }
            let accepted = loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if state.shutdown.load(Ordering::SeqCst) {
                            // The wake-up connection (or any racing
                            // late arrival) is dropped unanswered.
                            break Ok(());
                        }
                        let _ = tx.send((stream, false));
                    }
                    Err(e) => break Err(e),
                }
            };
            // Idempotent: on the error path this raises the flag so the
            // admin accept loop and drift monitor also wind down.
            state.request_shutdown();
            drop(tx);
            accepted
        });
        // Final maintenance: durable access log, rolling aggregates
        // published as `serve.rolling.*` gauges for the run manifest.
        state.ops.maintenance_flush();
        state.ops.publish_rolling_gauges(state.tel.registry());
        result
    }
}

/// A daemon running on a background thread (tests and the load
/// client).
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    thread: std::thread::JoinHandle<std::io::Result<()>>,
}

impl ServerHandle {
    /// Binds and serves `cfg` on a fresh thread with its own active
    /// telemetry.
    pub fn spawn(cfg: ServeConfig) -> std::io::Result<ServerHandle> {
        let tel = Telemetry::new(TelemetryConfig::on());
        let server = Server::bind(cfg, tel)?;
        let addr = server.local_addr();
        let state = server.state();
        let thread = std::thread::spawn(move || server.run());
        Ok(ServerHandle {
            addr,
            state,
            thread,
        })
    }

    /// Bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared state (telemetry, cache introspection).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Requests shutdown and joins the server thread.
    pub fn shutdown(self) -> std::io::Result<()> {
        self.state.request_shutdown();
        self.thread
            .join()
            .map_err(|_| std::io::Error::other("server thread panicked"))?
    }
}

/// Serves one connection: batched keep-alive request handling until
/// the peer closes, errors, or asks to stop. `admin` marks
/// connections from the dedicated admin listener, which only serve
/// the operational surface.
fn handle_connection(state: &ServerState, stream: TcpStream, admin: bool) {
    stream
        .set_read_timeout(Some(Duration::from_millis(state.cfg.read_timeout_ms)))
        .ok();
    stream.set_nodelay(true).ok();
    let reg = state.tel.registry();
    reg.counter("serve.http.connections_total").inc();
    let mut reader = BufReader::new(stream);
    loop {
        let req = match http::read_request(&mut reader, state.cfg.max_body_bytes) {
            Ok(req) => req,
            Err(HttpError::Closed) | Err(HttpError::Io(_)) => break,
            Err(err) => {
                let resp = match err {
                    HttpError::Bad(m) => Response::error(400, &m),
                    HttpError::TooLarge(limit) => {
                        Response::error(413, &format!("request body exceeds {limit} bytes"))
                    }
                    HttpError::Unsupported(m) => Response::error(501, &m),
                    HttpError::Closed | HttpError::Io(_) => unreachable!("handled above"),
                };
                reg.counter("serve.http.parse_errors_total").inc();
                write_counted(state, &mut reader, &resp, false);
                break;
            }
        };
        reg.counter("serve.http.requests_total").inc();
        let keep = {
            let _span = state.tel.span("serve/request");
            // The timer finishes after the response write, so rolling
            // latencies and access-log lines cover the full request.
            let timer = state.ops.timer(req.path());
            let resp = route(state, &req, admin);
            let keep = req.keep_alive() && resp.status != 413;
            write_counted(state, &mut reader, &resp, keep);
            timer.finish(&req, &resp);
            keep
        };
        if !keep {
            break;
        }
    }
}

/// Writes a response, counting it even when the peer is gone — the
/// ledger `responses == requests + parse_errors` stays exact.
fn write_counted(
    state: &ServerState,
    reader: &mut BufReader<TcpStream>,
    resp: &Response,
    keep_alive: bool,
) {
    state
        .tel
        .registry()
        .counter("serve.http.responses_total")
        .inc();
    let mut stream = reader.get_ref();
    let _ = http::write_response(&mut stream, resp, keep_alive);
}

/// Routes one parsed request. Admin-listener connections only see the
/// operational surface; the main listener serves everything.
fn route(state: &ServerState, req: &Request, admin: bool) -> Response {
    if admin && matches!(req.path(), "/query" | "/v1/flow" | "/v1/batch") {
        return Response::error(
            404,
            &format!("'{}' is not served on the admin listener", req.path()),
        );
    }
    match (req.method.as_str(), req.path()) {
        ("GET", "/healthz") => Response::json(200, "{\"status\": \"ok\"}\n".to_string()),
        ("GET", "/metrics") => Response::exposition(200, state.ops.render_metrics(&state.tel)),
        ("GET", "/statusz") => Response::json(200, statusz_body(state)),
        ("GET", "/readyz") => readyz(state),
        ("POST", "/shutdown") => {
            state.request_shutdown();
            Response::json(200, "{\"status\": \"shutting-down\"}\n".to_string())
        }
        ("GET" | "POST", "/query") => answer_query(state, req),
        ("GET" | "POST", "/v1/flow") => answer_flow(state, req),
        ("POST", "/v1/batch") => answer_batch(state, req),
        (
            _,
            "/healthz" | "/readyz" | "/statusz" | "/metrics" | "/shutdown" | "/query" | "/v1/flow"
            | "/v1/batch",
        ) => Response::error(
            405,
            &format!("method {} not allowed for {}", req.method, req.path()),
        ),
        (_, path) => Response::error(404, &format!("unknown path '{path}'")),
    }
}

/// `GET /readyz`: `200` only when the worker pool is whole, the answer
/// cache is within capacity, and the drift monitor has not flagged an
/// analytic answer as drifted past the KS threshold; otherwise `503`
/// with the failing checks listed.
fn readyz(state: &ServerState) -> Response {
    let reg = state.tel.registry();
    let started = reg.counter_value("serve.workers.started_total").unwrap_or(0);
    let exited = reg.counter_value("serve.workers.exited_total").unwrap_or(0);
    let expected = state.cfg.worker_count() as u64;
    let mut failing = Vec::new();
    if started.saturating_sub(exited) != expected {
        failing.push(format!(
            "worker pool degraded: {} of {expected} workers live",
            started.saturating_sub(exited)
        ));
    }
    if state.cache.len() > state.cfg.cache_cap {
        failing.push(format!(
            "cache over capacity: {} entries > {}",
            state.cache.len(),
            state.cfg.cache_cap
        ));
    }
    if reg.gauge("serve.drift.degraded").get() != 0 {
        failing.push(format!(
            "analytic drift past threshold: worst probe ks_ppm = {}",
            reg.gauge("serve.drift.probe_ks_ppm").get()
        ));
    }
    let mut o = JsonObject::new();
    if failing.is_empty() {
        o.field_str("status", "ready");
    } else {
        let items: Vec<String> = failing
            .iter()
            .map(|f| format!("\"{}\"", banyan_obs::json::escape(f)))
            .collect();
        o.field_str("status", "not-ready")
            .field_raw("failing", &format!("[{}]", items.join(", ")));
    }
    let mut body = o.finish();
    body.push('\n');
    Response::json(if failing.is_empty() { 200 } else { 503 }, body)
}

/// `GET /statusz`: one JSON document for humans and tests — uptime,
/// worker pool, cache health, the drift-gauge table, and per-route
/// rolling-window latency quantiles.
fn statusz_body(state: &ServerState) -> String {
    let reg = state.tel.registry();
    let started = reg.counter_value("serve.workers.started_total").unwrap_or(0);
    let exited = reg.counter_value("serve.workers.exited_total").unwrap_or(0);
    let hits = reg.counter_value("serve.cache.hits").unwrap_or(0);
    let misses = reg.counter_value("serve.cache.misses").unwrap_or(0);
    let looked_up = hits + misses;
    let mut workers = JsonObject::new();
    workers
        .field_u64("expected", state.cfg.worker_count() as u64)
        .field_u64("active", started.saturating_sub(exited));
    let mut cache = JsonObject::new();
    cache
        .field_u64("entries", state.cache.len() as u64)
        .field_u64("capacity", state.cfg.cache_cap as u64)
        .field_u64("hits", hits)
        .field_u64("misses", misses)
        .field_f64(
            "hit_ratio",
            if looked_up == 0 {
                0.0
            } else {
                hits as f64 / looked_up as f64
            },
        );
    let mut drift = JsonObject::new();
    drift
        .field_u64("degraded", reg.gauge("serve.drift.degraded").get())
        .field_f64("threshold", state.cfg.drift_threshold)
        .field_u64("last_ks_ppm", reg.gauge("serve.drift.last_ks_ppm").get())
        .field_u64("probe_ks_ppm", reg.gauge("serve.drift.probe_ks_ppm").get())
        .field_u64(
            "probes_total",
            reg.counter_value("serve.drift.probes_total").unwrap_or(0),
        )
        .field_u64("hot_keys", state.ops.hot_queries().len() as u64);
    let mut o = JsonObject::new();
    o.field_str("schema", "banyan-serve/statusz/v1")
        .field_f64("uptime_secs", state.ops.uptime().as_secs_f64())
        .field_str("addr", &state.addr.to_string())
        .field_raw("workers", &workers.finish())
        .field_raw("cache", &cache.finish())
        .field_raw("drift", &drift.finish())
        .field_raw("routes", &state.ops.routes_status_json());
    let mut body = o.finish();
    body.push('\n');
    body
}

/// One drift-monitor pass: flushes the plane's buffers, then re-probes
/// every hot analytic configuration with a fresh short simulation and
/// updates the drift gauges `/readyz` consumes. Public so tests (and
/// the monitor thread) can tick deterministically.
pub fn drift_tick(state: &ServerState) {
    state.ops.maintenance_flush();
    let reg = state.tel.registry();
    let hot = state.ops.hot_queries();
    let settings = SimSettings {
        cycles: state.cfg.probe_cycles,
        reps: state.cfg.probe_reps,
        seed: state.cfg.seed,
    };
    let mut worst = 0u64;
    let mut degraded = false;
    let mut probed = false;
    for (_, q) in &hot {
        let Some(model) = AnalyticModel::for_query(q) else {
            continue;
        };
        let Ok(report) = probe_drift(q, &model, settings) else {
            continue;
        };
        reg.counter("serve.drift.probes_total").inc();
        probed = true;
        worst = worst.max(report.ks_ppm());
        degraded = degraded || report.ks > state.cfg.drift_threshold;
    }
    if probed {
        reg.gauge("serve.drift.probe_ks_ppm").set(worst);
        reg.gauge("serve.drift.degraded").set(u64::from(degraded));
    }
}

/// The background drift monitor: sleeps in short steps (so shutdown is
/// prompt), ticking every `drift_poll_ms`.
fn drift_monitor(state: &ServerState) {
    let poll = Duration::from_millis(state.cfg.drift_poll_ms);
    let step = Duration::from_millis(25).min(poll);
    let mut slept = Duration::ZERO;
    loop {
        std::thread::sleep(step);
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        slept += step;
        if slept >= poll {
            slept = Duration::ZERO;
            drift_tick(state);
        }
    }
}

/// Looks a canonical key up in the answer cache, computing and
/// inserting on a miss. Returns the answer and whether it was a hit.
/// The hit/miss counters move for every validated query — including
/// batch elements — so the `validated == hits + misses` ledger stays
/// exact; the miss is counted *before* `compute` so a failed
/// computation still balances.
fn cached_answer(
    state: &ServerState,
    key: String,
    compute: impl FnOnce() -> Result<CachedAnswer, String>,
) -> Result<(CachedAnswer, bool), String> {
    let reg = state.tel.registry();
    if let Some(hit) = state.cache.get(&key) {
        reg.counter("serve.cache.hits").inc();
        return Ok((hit, true));
    }
    reg.counter("serve.cache.misses").inc();
    let answer = compute()?;
    state.cache.insert(key, answer.clone());
    reg.gauge("serve.cache.entries").set(state.cache.len() as u64);
    Ok((answer, false))
}

/// Decodes, caches, and answers a capacity query.
fn answer_query(state: &ServerState, req: &Request) -> Response {
    let reg = state.tel.registry();
    reg.counter("serve.query.requests_total").inc();
    let parsed = if req.method == "POST" {
        std::str::from_utf8(&req.body)
            .map_err(|_| "request body is not valid UTF-8".to_string())
            .and_then(Query::from_json)
    } else {
        Query::from_query_string(req.query_string().unwrap_or(""))
    };
    let query = match parsed {
        Ok(q) => q,
        Err(msg) => {
            reg.counter("serve.query.errors_total").inc();
            return Response::error(400, &msg);
        }
    };
    reg.counter("serve.query.validated_total").inc();
    match cached_answer(state, query.cache_key(), || compute_answer(state, &query)) {
        Ok((answer, hit)) => Response::json(200, answer.body)
            .with_header("X-Banyan-Cache", if hit { "hit" } else { "miss" })
            .with_header("X-Banyan-Source", answer.source),
        Err(msg) => {
            reg.counter("serve.query.errors_total").inc();
            Response::error(422, &msg)
        }
    }
}

/// Decodes, caches, and answers a feed-forward flow query
/// (`/v1/flow`): the generalized `banyan-flow` engine behind the same
/// canonical-key cache and counter discipline as `/query`.
fn answer_flow(state: &ServerState, req: &Request) -> Response {
    let reg = state.tel.registry();
    reg.counter("serve.flow.requests_total").inc();
    let parsed = if req.method == "POST" {
        std::str::from_utf8(&req.body)
            .map_err(|_| "request body is not valid UTF-8".to_string())
            .and_then(FlowQuery::from_json)
    } else {
        FlowQuery::from_query_string(req.query_string().unwrap_or(""))
    };
    let fq = match parsed {
        Ok(q) => q,
        Err(msg) => {
            reg.counter("serve.flow.errors_total").inc();
            return Response::error(400, &msg);
        }
    };
    reg.counter("serve.flow.validated_total").inc();
    let compute = || {
        let _span = state.tel.span("serve/flow/analytic");
        Ok(CachedAnswer {
            body: flow::flow_body(&fq)?,
            source: "flow-analytic",
        })
    };
    match cached_answer(state, fq.cache_key(), compute) {
        Ok((answer, hit)) => Response::json(200, answer.body)
            .with_header("X-Banyan-Cache", if hit { "hit" } else { "miss" })
            .with_header("X-Banyan-Source", answer.source),
        Err(msg) => {
            reg.counter("serve.flow.errors_total").inc();
            Response::error(422, &msg)
        }
    }
}

/// Largest accepted `/v1/batch` array (each element can cost a probe or
/// full simulation, so the cap bounds one request's work).
const BATCH_MAX: usize = 256;

/// `POST /v1/batch`: a JSON array of query objects answered in order.
/// Elements carrying a `topo` field are flow queries; everything else
/// is a capacity query. Each element rides the canonical-key cache
/// individually (with the usual validated/hit/miss counters), and a bad
/// element yields an `{"error": …}` entry instead of failing the batch.
fn answer_batch(state: &ServerState, req: &Request) -> Response {
    let reg = state.tel.registry();
    reg.counter("serve.batch.requests_total").inc();
    let parsed: Result<JsonValue, String> = std::str::from_utf8(&req.body)
        .map_err(|_| "request body is not valid UTF-8".to_string())
        .and_then(|text| JsonValue::parse(text).map_err(|e| format!("invalid JSON body: {e}")));
    let doc = match parsed {
        Ok(doc) => doc,
        Err(msg) => {
            reg.counter("serve.batch.errors_total").inc();
            return Response::error(400, &msg);
        }
    };
    let items = match doc.as_array() {
        Some([]) => {
            reg.counter("serve.batch.errors_total").inc();
            return Response::error(400, "batch array is empty");
        }
        Some(items) if items.len() > BATCH_MAX => {
            reg.counter("serve.batch.errors_total").inc();
            return Response::error(
                400,
                &format!("batch of {} elements exceeds the {BATCH_MAX}-element cap", items.len()),
            );
        }
        Some(items) => items,
        None => {
            reg.counter("serve.batch.errors_total").inc();
            return Response::error(400, "batch body must be a JSON array of query objects");
        }
    };
    let _span = state.tel.span("serve/batch");
    let mut results = Vec::with_capacity(items.len());
    for item in items {
        let answered = if item.get("topo").is_some() {
            FlowQuery::from_value(item).and_then(|fq| {
                reg.counter("serve.flow.validated_total").inc();
                cached_answer(state, fq.cache_key(), || {
                    // Same span as answer_flow, so batch-driven flow
                    // work shows up in span-based observability too.
                    let _span = state.tel.span("serve/flow/analytic");
                    Ok(CachedAnswer {
                        body: flow::flow_body(&fq)?,
                        source: "flow-analytic",
                    })
                })
            })
        } else {
            Query::from_value(item).map(|q| (q.cache_key(), q)).and_then(|(key, q)| {
                reg.counter("serve.query.validated_total").inc();
                cached_answer(state, key, || compute_answer(state, &q))
            })
        };
        results.push(match answered {
            // Answer bodies are single JSON objects with a trailing
            // newline; embedded as array elements they drop it.
            Ok((answer, _)) => answer.body.trim_end().to_string(),
            Err(msg) => {
                reg.counter("serve.batch.element_errors_total").inc();
                let mut e = JsonObject::new();
                e.field_str("error", &msg);
                e.finish()
            }
        });
    }
    let mut o = JsonObject::new();
    o.field_str("schema", "banyan-serve/batch/v1")
        .field_u64("count", results.len() as u64)
        .field_raw("results", &format!("[{}]", results.join(", ")));
    let mut body = o.finish();
    body.push('\n');
    Response::json(200, body)
}

/// The drift-gated answer policy.
fn compute_answer(state: &ServerState, query: &Query) -> Result<CachedAnswer, String> {
    let cfg = &state.cfg;
    let sim_settings = SimSettings {
        cycles: cfg.sim_cycles,
        reps: cfg.sim_reps,
        seed: cfg.seed,
    };
    match query.mode {
        Mode::Analytic => {
            let model = AnalyticModel::for_query(query).ok_or_else(|| {
                "no closed form covers this configuration; use mode=auto or mode=simulate"
                    .to_string()
            })?;
            let _span = state.tel.span("serve/query/analytic");
            state.tel.registry().counter("serve.answer.analytic_total").inc();
            state.ops.note_hot(query);
            Ok(CachedAnswer {
                body: analytic_body(query, &model, None),
                source: "analytic",
            })
        }
        Mode::Simulate => simulate(state, query, sim_settings, None),
        Mode::Auto => {
            let Some(model) = AnalyticModel::for_query(query) else {
                // Outside analytic reach: straight to the simulator.
                return simulate(state, query, sim_settings, None);
            };
            // Analytically covered: the drift monitor re-probes it.
            state.ops.note_hot(query);
            let probe_settings = SimSettings {
                cycles: cfg.probe_cycles,
                reps: cfg.probe_reps,
                seed: cfg.seed,
            };
            let report = {
                let _span = state.tel.span("serve/query/probe");
                state.tel.registry().counter("serve.answer.probes_total").inc();
                probe_drift(query, &model, probe_settings)?
            };
            state
                .tel
                .registry()
                .gauge("serve.drift.last_ks_ppm")
                .set(report.ks_ppm());
            if report.ks <= cfg.drift_threshold {
                let _span = state.tel.span("serve/query/analytic");
                state.tel.registry().counter("serve.answer.analytic_total").inc();
                Ok(CachedAnswer {
                    body: analytic_body(query, &model, Some(report.ks)),
                    source: "analytic",
                })
            } else {
                state
                    .tel
                    .registry()
                    .counter("serve.answer.sim_fallback_total")
                    .inc();
                simulate(state, query, sim_settings, Some(report.ks))
            }
        }
    }
}

/// The simulation slow path (also the `auto` fallback).
fn simulate(
    state: &ServerState,
    query: &Query,
    settings: SimSettings,
    drift_ks: Option<f64>,
) -> Result<CachedAnswer, String> {
    let _span = state.tel.span("serve/query/sim");
    state.tel.registry().counter("serve.answer.sim_total").inc();
    let outcome = run_sim(query, settings)?;
    state.tel.log_run(format!(
        "sim answer {} cycles={} reps={} delivered={}",
        query.cache_key(),
        settings.cycles,
        settings.reps,
        outcome.delivered
    ));
    Ok(CachedAnswer {
        body: sim_body(query, &outcome, drift_ks),
        source: "simulation",
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawn_healthz_shutdown() {
        let cfg = ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            ..ServeConfig::default()
        };
        let handle = ServerHandle::spawn(cfg).unwrap();
        let addr = handle.addr().to_string();
        let mut client = http::Client::connect(&addr).unwrap();
        let resp = client.request("GET", "/healthz", None).unwrap();
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("ok"), "{}", resp.body);
        drop(client);
        handle.shutdown().unwrap();
    }

    #[test]
    fn worker_count_defaults_are_bounded() {
        let cfg = ServeConfig::default();
        let n = cfg.worker_count();
        assert!((4..=8).contains(&n), "{n}");
        let cfg = ServeConfig {
            workers: 3,
            ..ServeConfig::default()
        };
        assert_eq!(cfg.worker_count(), 3);
    }
}
