//! Capacity-query decoding, validation, and canonicalization.
//!
//! A query arrives as a JSON body (`POST /query`) or a query string
//! (`GET /query?...`). Both decoders funnel into the *same* hardened
//! flag-validation path the CLI uses ([`crate::cli`]): fields become a
//! [`Flags`] map, unknown fields are rejected with the CLI's
//! "did you mean" diagnostics, and probabilities / service mixes go
//! through `get_prob` / `service_from_flags`. The canonical rendering
//! of a validated query ([`Query::cache_key`]) is the daemon's cache
//! key, so two requests that mean the same configuration — whatever
//! their field order or number formatting — hit the same entry.

use crate::cli::{get, get_prob, service_from_flags, validate_flags, Flags};
use banyan_obs::json::JsonValue;
use banyan_sim::traffic::ServiceDist;

/// Fields a capacity query may carry (the serve-side "known flags").
pub const QUERY_FIELDS: &[&str] = &[
    "k",
    "stages",
    "p",
    "q",
    "m",
    "geometric-mu",
    "mix",
    "mode",
];

/// How the daemon should answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Drift-gated: analytic when the KS drift gauge is within
    /// threshold, simulation otherwise.
    Auto,
    /// Closed forms only; `422` when no analytic model covers the
    /// configuration.
    Analytic,
    /// Always simulate.
    Simulate,
}

impl Mode {
    /// Canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Mode::Auto => "auto",
            Mode::Analytic => "analytic",
            Mode::Simulate => "simulate",
        }
    }
}

/// A validated capacity query.
#[derive(Clone, Debug)]
pub struct Query {
    /// Switch arity `k`.
    pub k: u32,
    /// Number of stages `n`.
    pub stages: u32,
    /// Injection probability per input per cycle.
    pub p: f64,
    /// Hotspot fraction (0 = uniform traffic).
    pub q: f64,
    /// Message-size (service-time) distribution.
    pub service: ServiceDist,
    /// Answering mode.
    pub mode: Mode,
}

impl Query {
    /// Validates a flags map into a query. This is the single decode
    /// path behind JSON bodies, query strings, and (transitively) the
    /// CLI flags the daemon inherited.
    pub fn from_flags(flags: &Flags) -> Result<Query, String> {
        validate_flags(flags, QUERY_FIELDS)?;
        let k: u32 = get(flags, "k", 2)?;
        if k < 2 {
            return Err(format!("--k must be at least 2, got {k}"));
        }
        let stages: u32 = get(flags, "stages", 6)?;
        if stages == 0 {
            return Err("--stages must be at least 1".to_string());
        }
        let p = get_prob(flags, "p", 0.5)?;
        let q = get_prob(flags, "q", 0.0)?;
        let service = service_from_flags(flags)?;
        let mode = match flags.get("mode").map(String::as_str) {
            None | Some("auto") => Mode::Auto,
            Some("analytic") => Mode::Analytic,
            Some("simulate") => Mode::Simulate,
            Some(other) => {
                return Err(format!(
                    "--mode must be auto, analytic, or simulate, got '{other}'"
                ));
            }
        };
        let query = Query {
            k,
            stages,
            p,
            q,
            service,
            mode,
        };
        // Unstable configurations have no steady state: the closed
        // forms blow up and an infinite-buffer simulation never drains.
        // ρ = 1 exactly is rejected too (the paper's formulas divide by
        // 1 − ρ).
        if query.rho() >= 1.0 {
            return Err(format!(
                "offered load rho = p*E[m] = {} is not < 1; no steady state exists",
                query.rho()
            ));
        }
        Ok(query)
    }

    /// Decodes a JSON object body. Field names may use `_` or `-`
    /// (`geometric_mu` ≡ `geometric-mu`); values may be numbers,
    /// strings, or booleans. Duplicate fields are an error, mirroring
    /// the CLI's duplicate-flag rule.
    pub fn from_json(text: &str) -> Result<Query, String> {
        let doc = JsonValue::parse(text).map_err(|e| format!("invalid JSON body: {e}"))?;
        Query::from_value(&doc)
    }

    /// Decodes an already-parsed JSON object (one `/v1/batch` element).
    pub fn from_value(doc: &JsonValue) -> Result<Query, String> {
        Query::from_flags(&flags_from_value(doc)?)
    }

    /// Decodes a `k=2&p=0.5`-style query string (no percent-decoding —
    /// none of the field values need it).
    pub fn from_query_string(qs: &str) -> Result<Query, String> {
        Query::from_flags(&flags_from_query_string(qs)?)
    }

    /// Offered load ρ = p · E[m].
    pub fn rho(&self) -> f64 {
        self.p * self.service.mean()
    }

    /// Canonical service rendering used in cache keys and responses.
    pub fn service_label(&self) -> String {
        match &self.service {
            ServiceDist::Constant(m) => format!("constant:{m}"),
            ServiceDist::Geometric(mu) => format!("geometric:{mu}"),
            ServiceDist::Mixed(sizes) => {
                let parts: Vec<String> =
                    sizes.iter().map(|(m, g)| format!("{m}:{g}")).collect();
                format!("mixed:{}", parts.join(","))
            }
        }
    }

    /// Canonical key for the answer cache: every field in fixed order,
    /// floats in shortest round-trip form. Requests that validate to
    /// the same configuration share a key regardless of field order,
    /// `_`/`-` spelling, or `0.50`-style formatting.
    pub fn cache_key(&self) -> String {
        format!(
            "k={};n={};p={};q={};service={};mode={}",
            self.k,
            self.stages,
            self.p,
            self.q,
            self.service_label(),
            self.mode.name(),
        )
    }
}

/// Converts a parsed JSON object into a [`Flags`] map: field names may
/// use `_` or `-`, values may be numbers, strings, or booleans, and
/// duplicate fields (post-rename) are an error — the same rules for
/// every JSON decode path (`/query`, `/v1/flow`, `/v1/batch` elements).
pub fn flags_from_value(doc: &JsonValue) -> Result<Flags, String> {
    let members = doc
        .as_object()
        .ok_or_else(|| "request body must be a JSON object".to_string())?;
    let mut flags = Flags::new();
    for (name, value) in members {
        let name = name.replace('_', "-");
        let rendered = match value {
            JsonValue::Str(s) => s.clone(),
            // `{}`-formatting an f64 is the shortest round-trip
            // rendering, so integers stay integral ("4", not "4.0")
            // and nothing is lost re-parsing.
            JsonValue::Num(n) => format!("{n}"),
            JsonValue::Bool(b) => b.to_string(),
            _ => {
                return Err(format!(
                    "field \"{name}\" must be a number, string, or boolean"
                ));
            }
        };
        if flags.insert(name.clone(), rendered).is_some() {
            return Err(format!("duplicate field \"{name}\""));
        }
    }
    Ok(flags)
}

/// Converts a `k=2&p=0.5`-style query string into a [`Flags`] map; a
/// pair without `=` becomes the boolean `"true"`.
pub fn flags_from_query_string(qs: &str) -> Result<Flags, String> {
    let mut flags = Flags::new();
    for pair in qs.split('&').filter(|s| !s.is_empty()) {
        let (name, value) = pair.split_once('=').unwrap_or((pair, "true"));
        if name.is_empty() {
            return Err(format!("bad query-string pair '{pair}'"));
        }
        if flags.insert(name.to_string(), value.to_string()).is_some() {
            return Err(format!("duplicate field \"{name}\""));
        }
    }
    Ok(flags)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_and_query_string_agree() {
        let a = Query::from_json(r#"{"k": 2, "stages": 6, "p": 0.5, "m": 1}"#).unwrap();
        let b = Query::from_query_string("k=2&stages=6&p=0.5&m=1").unwrap();
        assert_eq!(a.cache_key(), b.cache_key());
        assert_eq!(a.k, 2);
        assert_eq!(a.stages, 6);
        assert_eq!(a.mode, Mode::Auto);
    }

    #[test]
    fn canonicalization_ignores_field_order_and_formatting() {
        let a = Query::from_json(r#"{"p": 0.50, "k": 4, "stages": 3}"#).unwrap();
        let b = Query::from_json(r#"{"k": 4.0, "stages": 3, "p": 0.5}"#).unwrap();
        assert_eq!(a.cache_key(), b.cache_key());
    }

    #[test]
    fn underscore_fields_are_accepted() {
        let q = Query::from_json(r#"{"geometric_mu": 0.5, "p": 0.25}"#).unwrap();
        assert_eq!(q.service, ServiceDist::Geometric(0.5));
    }

    #[test]
    fn unknown_fields_get_cli_diagnostics() {
        let err = Query::from_json(r#"{"stage": 6}"#).unwrap_err();
        assert!(err.contains("did you mean --stages?"), "{err}");
    }

    #[test]
    fn invalid_values_are_rejected() {
        assert!(Query::from_json(r#"{"p": 1.5}"#).is_err());
        assert!(Query::from_json(r#"{"k": 1}"#).is_err());
        assert!(Query::from_json(r#"{"stages": 0}"#).is_err());
        assert!(Query::from_json(r#"{"geometric_mu": 0}"#).is_err());
        assert!(Query::from_json(r#"{"mix": "4:0.5,8:0.6"}"#).is_err());
        assert!(Query::from_json(r#"{"mode": "psychic"}"#).is_err());
        assert!(Query::from_json(r#"not json"#).is_err());
        assert!(Query::from_json(r#"[1,2]"#).is_err());
    }

    #[test]
    fn duplicate_fields_are_rejected() {
        let err = Query::from_json(r#"{"p": 0.5, "p": 0.6}"#).unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
        let err = Query::from_query_string("p=0.5&p=0.6").unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
    }

    #[test]
    fn unstable_load_is_rejected() {
        // p=0.9 with m=2 gives rho=1.8.
        let err = Query::from_json(r#"{"p": 0.9, "m": 2}"#).unwrap_err();
        assert!(err.contains("steady state"), "{err}");
        // rho exactly 1 is rejected too.
        assert!(Query::from_json(r#"{"p": 1.0, "m": 1}"#).is_err());
    }

    #[test]
    fn service_labels_are_canonical() {
        let q = Query::from_json(r#"{"mix": "4:0.5,8:0.5", "p": 0.1}"#).unwrap();
        assert_eq!(q.service_label(), "mixed:4:0.5,8:0.5");
        let q = Query::from_query_string("m=3&p=0.2").unwrap();
        assert_eq!(q.service_label(), "constant:3");
    }
}
