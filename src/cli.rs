//! Argument parsing for the `banyan` CLI (no external parser crates).
//!
//! Flags are `--name value`; a trailing flag with no value is boolean
//! (`"true"`). [`service_from_flags`] builds a [`ServiceDist`] from
//! `--m`, `--geometric-mu`, or `--mix SIZE:PROB,SIZE:PROB,…`.

use banyan_sim::traffic::ServiceDist;
use std::collections::HashMap;

/// Parsed `--flag value` pairs.
pub type Flags = HashMap<String, String>;

/// Parses `--name value` pairs; a flag without a following value becomes
/// the boolean `"true"`.
pub fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut map = Flags::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        let Some(name) = a.strip_prefix("--") else {
            return Err(format!("expected --flag, got '{a}'"));
        };
        // A token starting with "--" is the next flag, not this flag's
        // value — so `--quantiles --p 0.5` parses as boolean + pair.
        match it.peek() {
            Some(v) if !v.starts_with("--") => {
                map.insert(name.to_string(), it.next().expect("peeked").clone());
            }
            _ => {
                map.insert(name.to_string(), "true".to_string());
            }
        }
    }
    Ok(map)
}

/// Fetches a typed flag with a default.
pub fn get<T: std::str::FromStr>(flags: &Flags, name: &str, default: T) -> Result<T, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid value '{v}' for --{name}")),
    }
}

/// Fetches a probability flag, rejecting values outside `[0, 1]` with a
/// clean error (instead of letting the model constructors panic).
pub fn get_prob(flags: &Flags, name: &str, default: f64) -> Result<f64, String> {
    let v: f64 = get(flags, name, default)?;
    if (0.0..=1.0).contains(&v) {
        Ok(v)
    } else {
        Err(format!("--{name} must be a probability in [0, 1], got {v}"))
    }
}

/// Builds the service distribution from `--geometric-mu`, `--mix`, or
/// `--m` (in that priority order; default constant 1).
pub fn service_from_flags(flags: &Flags) -> Result<ServiceDist, String> {
    if let Some(mu) = flags.get("geometric-mu") {
        let mu: f64 = mu
            .parse()
            .map_err(|_| "invalid --geometric-mu".to_string())?;
        return Ok(ServiceDist::Geometric(mu));
    }
    if let Some(mix) = flags.get("mix") {
        let mut sizes = Vec::new();
        for part in mix.split(',') {
            let (m, g) = part
                .split_once(':')
                .ok_or_else(|| format!("bad --mix entry '{part}' (want SIZE:PROB)"))?;
            sizes.push((
                m.parse().map_err(|_| "bad size in --mix".to_string())?,
                g.parse().map_err(|_| "bad prob in --mix".to_string())?,
            ));
        }
        return Ok(ServiceDist::Mixed(sizes));
    }
    Ok(ServiceDist::Constant(get(flags, "m", 1u32)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_pairs_and_booleans() {
        let f = parse_flags(&args(&["--k", "4", "--p", "0.5", "--quantiles"])).unwrap();
        assert_eq!(f.get("k").unwrap(), "4");
        assert_eq!(f.get("p").unwrap(), "0.5");
        assert_eq!(f.get("quantiles").unwrap(), "true");
    }

    #[test]
    fn boolean_flag_before_other_flags() {
        let f = parse_flags(&args(&["--quantiles", "--p", "0.8"])).unwrap();
        assert_eq!(f.get("quantiles").unwrap(), "true");
        assert_eq!(f.get("p").unwrap(), "0.8");
    }

    #[test]
    fn rejects_positional_arguments() {
        let err = parse_flags(&args(&["bogus"])).unwrap_err();
        assert!(err.contains("bogus"));
    }

    #[test]
    fn typed_get_with_default() {
        let f = parse_flags(&args(&["--k", "8"])).unwrap();
        assert_eq!(get(&f, "k", 2u32).unwrap(), 8);
        assert_eq!(get(&f, "stages", 6u32).unwrap(), 6);
        assert!((get(&f, "p", 0.5f64).unwrap() - 0.5).abs() < 1e-15);
    }

    #[test]
    fn typed_get_reports_bad_values() {
        let f = parse_flags(&args(&["--k", "banana"])).unwrap();
        let err = get(&f, "k", 2u32).unwrap_err();
        assert!(err.contains("banana"));
    }

    #[test]
    fn service_default_is_unit() {
        let f = Flags::new();
        assert_eq!(service_from_flags(&f).unwrap(), ServiceDist::Constant(1));
    }

    #[test]
    fn service_constant_m() {
        let f = parse_flags(&args(&["--m", "4"])).unwrap();
        assert_eq!(service_from_flags(&f).unwrap(), ServiceDist::Constant(4));
    }

    #[test]
    fn service_geometric() {
        let f = parse_flags(&args(&["--geometric-mu", "0.25"])).unwrap();
        assert_eq!(
            service_from_flags(&f).unwrap(),
            ServiceDist::Geometric(0.25)
        );
    }

    #[test]
    fn service_mix() {
        let f = parse_flags(&args(&["--mix", "4:0.5,8:0.5"])).unwrap();
        assert_eq!(
            service_from_flags(&f).unwrap(),
            ServiceDist::Mixed(vec![(4, 0.5), (8, 0.5)])
        );
    }

    #[test]
    fn service_mix_rejects_malformed() {
        let f = parse_flags(&args(&["--mix", "4-0.5"])).unwrap();
        assert!(service_from_flags(&f).is_err());
        let f = parse_flags(&args(&["--mix", "x:0.5"])).unwrap();
        assert!(service_from_flags(&f).is_err());
    }
}
