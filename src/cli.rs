//! Argument parsing for the `banyan` CLI (no external parser crates).
//!
//! Flags are `--name value` or `--name=value`; a trailing flag with no
//! value is boolean (`"true"`). Repeating a flag is an error.
//! [`service_from_flags`] builds a validated [`ServiceDist`] from
//! `--m`, `--geometric-mu`, or `--mix SIZE:PROB,SIZE:PROB,…`; it is the
//! single hardened decode path shared by the CLI and the `serve`
//! request decoder.

use banyan_sim::traffic::ServiceDist;
use std::collections::HashMap;

/// Parsed `--flag value` pairs.
pub type Flags = HashMap<String, String>;

/// Parses `--name value` / `--name=value` pairs; a flag without a value
/// becomes the boolean `"true"`. A repeated flag is an error — silently
/// keeping the last occurrence hides typos in long command lines.
pub fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut map = Flags::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        let Some(name) = a.strip_prefix("--") else {
            return Err(format!("expected --flag, got '{a}'"));
        };
        // `--name=value` carries its value inline; only the first `=`
        // splits, so values like `--mix=4:0.5,8:0.5` survive intact.
        let (name, inline) = match name.split_once('=') {
            Some((n, v)) => (n, Some(v.to_string())),
            None => (name, None),
        };
        if name.is_empty() {
            return Err(format!("expected --flag, got '{a}'"));
        }
        let value = match inline {
            Some(v) => v,
            // A token starting with "--" is the next flag, not this
            // flag's value — so `--quantiles --p 0.5` parses as
            // boolean + pair.
            None => match it.peek() {
                Some(v) if !v.starts_with("--") => it.next().expect("peeked").clone(),
                _ => "true".to_string(),
            },
        };
        if map.insert(name.to_string(), value).is_some() {
            return Err(format!("duplicate flag --{name}"));
        }
    }
    Ok(map)
}

/// Rejects flags that are not in `known` — previously unknown flags were
/// silently ignored, so a typo like `--stage 6` ran with the default
/// stage count. The error lists the offending flag and, when an entry of
/// `known` is within Levenshtein distance 2, suggests it. Flags are
/// checked in sorted order so the first error is deterministic.
pub fn validate_flags(flags: &Flags, known: &[&str]) -> Result<(), String> {
    let mut names: Vec<&str> = flags.keys().map(String::as_str).collect();
    names.sort_unstable();
    for name in names {
        if known.contains(&name) {
            continue;
        }
        let suggestion = known
            .iter()
            .map(|k| (levenshtein(name, k), *k))
            .filter(|&(d, _)| d <= 2)
            .min();
        let mut msg = format!("unknown flag --{name}");
        if let Some((_, k)) = suggestion {
            msg.push_str(&format!(" (did you mean --{k}?)"));
        } else {
            let mut all: Vec<&str> = known.to_vec();
            all.sort_unstable();
            msg.push_str(&format!(
                " (known flags: {})",
                all.iter()
                    .map(|k| format!("--{k}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            ));
        }
        return Err(msg);
    }
    Ok(())
}

/// Edit distance between two ASCII flag names (two-row DP).
fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<u8> = a.bytes().collect();
    let b: Vec<u8> = b.bytes().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Fetches a typed flag with a default.
pub fn get<T: std::str::FromStr>(flags: &Flags, name: &str, default: T) -> Result<T, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid value '{v}' for --{name}")),
    }
}

/// Validates that `v` is a probability; `what` labels the error. This is
/// the one range check behind [`get_prob`] and the `--mix` entries, so
/// every probability the CLI or the serve decoder accepts went through
/// the same gate.
pub fn check_prob(what: &str, v: f64) -> Result<f64, String> {
    if (0.0..=1.0).contains(&v) {
        Ok(v)
    } else {
        Err(format!("{what} must be a probability in [0, 1], got {v}"))
    }
}

/// Fetches a probability flag, rejecting values outside `[0, 1]` with a
/// clean error (instead of letting the model constructors panic).
pub fn get_prob(flags: &Flags, name: &str, default: f64) -> Result<f64, String> {
    check_prob(&format!("--{name}"), get(flags, name, default)?)
}

/// Builds the service distribution from `--geometric-mu`, `--mix`, or
/// `--m` (in that priority order; default constant 1).
///
/// All domains are validated here with clean errors — `--geometric-mu`
/// must lie in (0, 1], `--mix` probabilities in [0, 1] and summing to 1,
/// sizes at least 1 — so invalid input never reaches the panicking
/// `ServiceDist::validate` in the simulator.
pub fn service_from_flags(flags: &Flags) -> Result<ServiceDist, String> {
    if let Some(mu) = flags.get("geometric-mu") {
        let mu: f64 = mu
            .parse()
            .map_err(|_| format!("invalid value '{mu}' for --geometric-mu"))?;
        if !(mu > 0.0 && mu <= 1.0) {
            return Err(format!("--geometric-mu must be in (0, 1], got {mu}"));
        }
        return Ok(ServiceDist::Geometric(mu));
    }
    if let Some(mix) = flags.get("mix") {
        let mut sizes: Vec<(u32, f64)> = Vec::new();
        for part in mix.split(',') {
            let (m, g) = part
                .split_once(':')
                .ok_or_else(|| format!("bad --mix entry '{part}' (want SIZE:PROB)"))?;
            let m: u32 = m
                .parse()
                .map_err(|_| format!("bad size in --mix entry '{part}'"))?;
            if m == 0 {
                return Err(format!("--mix sizes must be at least 1, got 0 in '{part}'"));
            }
            let g: f64 = g
                .parse()
                .map_err(|_| format!("bad prob in --mix entry '{part}'"))?;
            let g = check_prob(&format!("--mix entry '{part}'"), g)?;
            sizes.push((m, g));
        }
        let total: f64 = sizes.iter().map(|&(_, g)| g).sum();
        if (total - 1.0).abs() > 1e-9 {
            return Err(format!("--mix probabilities must sum to 1, got {total}"));
        }
        return Ok(ServiceDist::Mixed(sizes));
    }
    let m: u32 = get(flags, "m", 1)?;
    if m == 0 {
        return Err("--m must be at least 1".to_string());
    }
    Ok(ServiceDist::Constant(m))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_pairs_and_booleans() {
        let f = parse_flags(&args(&["--k", "4", "--p", "0.5", "--quantiles"])).unwrap();
        assert_eq!(f.get("k").unwrap(), "4");
        assert_eq!(f.get("p").unwrap(), "0.5");
        assert_eq!(f.get("quantiles").unwrap(), "true");
    }

    #[test]
    fn boolean_flag_before_other_flags() {
        let f = parse_flags(&args(&["--quantiles", "--p", "0.8"])).unwrap();
        assert_eq!(f.get("quantiles").unwrap(), "true");
        assert_eq!(f.get("p").unwrap(), "0.8");
    }

    #[test]
    fn rejects_positional_arguments() {
        let err = parse_flags(&args(&["bogus"])).unwrap_err();
        assert!(err.contains("bogus"));
    }

    #[test]
    fn parses_equals_form() {
        // Regression: `--k=4` used to be stored as a flag named `k=4`,
        // so validate_flags emitted the baffling "unknown flag --k=4".
        let f = parse_flags(&args(&["--k=4", "--p=0.5", "--quantiles"])).unwrap();
        assert_eq!(f.get("k").unwrap(), "4");
        assert_eq!(f.get("p").unwrap(), "0.5");
        assert_eq!(f.get("quantiles").unwrap(), "true");
        assert!(validate_flags(&f, &["k", "p", "quantiles"]).is_ok());
    }

    #[test]
    fn equals_form_splits_only_on_first_equals() {
        let f = parse_flags(&args(&["--label=a=b"])).unwrap();
        assert_eq!(f.get("label").unwrap(), "a=b");
        // An explicit empty value stays empty rather than swallowing the
        // next token.
        let f = parse_flags(&args(&["--label=", "--p", "0.5"])).unwrap();
        assert_eq!(f.get("label").unwrap(), "");
        assert_eq!(f.get("p").unwrap(), "0.5");
    }

    #[test]
    fn equals_and_space_forms_mix() {
        let f = parse_flags(&args(&["--k=4", "--p", "0.5", "--mix=4:0.5,8:0.5"])).unwrap();
        assert_eq!(f.get("k").unwrap(), "4");
        assert_eq!(f.get("p").unwrap(), "0.5");
        assert_eq!(f.get("mix").unwrap(), "4:0.5,8:0.5");
    }

    #[test]
    fn rejects_bare_double_dash_with_equals() {
        assert!(parse_flags(&args(&["--=4"])).is_err());
    }

    #[test]
    fn duplicate_flags_are_an_error() {
        // Regression: duplicates silently last-won, so
        // `--k 2 ... --k 4` ran with k=4 and no warning.
        let err = parse_flags(&args(&["--k", "2", "--k", "4"])).unwrap_err();
        assert!(err.contains("duplicate flag --k"), "{err}");
        // Mixed forms collide too.
        let err = parse_flags(&args(&["--k=2", "--k", "4"])).unwrap_err();
        assert!(err.contains("duplicate flag --k"), "{err}");
    }

    #[test]
    fn validate_accepts_known_flags() {
        let f = parse_flags(&args(&["--k", "4", "--p", "0.5"])).unwrap();
        assert!(validate_flags(&f, &["k", "p", "m"]).is_ok());
    }

    #[test]
    fn validate_rejects_unknown_with_suggestion() {
        // `--stage` instead of `--stages`: previously silently ignored.
        let f = parse_flags(&args(&["--stage", "6"])).unwrap();
        let err = validate_flags(&f, &["k", "p", "stages"]).unwrap_err();
        assert!(err.contains("unknown flag --stage"), "{err}");
        assert!(err.contains("did you mean --stages?"), "{err}");
    }

    #[test]
    fn validate_lists_known_flags_when_no_near_match() {
        let f = parse_flags(&args(&["--bananas", "6"])).unwrap();
        let err = validate_flags(&f, &["k", "p", "stages"]).unwrap_err();
        assert!(err.contains("unknown flag --bananas"), "{err}");
        assert!(err.contains("known flags: --k --p --stages"), "{err}");
    }

    #[test]
    fn validate_reports_first_unknown_in_sorted_order() {
        let f = parse_flags(&args(&["--zzz", "1", "--aaa", "2"])).unwrap();
        let err = validate_flags(&f, &["k"]).unwrap_err();
        assert!(err.contains("--aaa"), "{err}");
    }

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("stage", "stages"), 1);
        assert_eq!(levenshtein("thread", "threads"), 1);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
    }

    #[test]
    fn typed_get_with_default() {
        let f = parse_flags(&args(&["--k", "8"])).unwrap();
        assert_eq!(get(&f, "k", 2u32).unwrap(), 8);
        assert_eq!(get(&f, "stages", 6u32).unwrap(), 6);
        assert!((get(&f, "p", 0.5f64).unwrap() - 0.5).abs() < 1e-15);
    }

    #[test]
    fn typed_get_reports_bad_values() {
        let f = parse_flags(&args(&["--k", "banana"])).unwrap();
        let err = get(&f, "k", 2u32).unwrap_err();
        assert!(err.contains("banana"));
    }

    #[test]
    fn service_default_is_unit() {
        let f = Flags::new();
        assert_eq!(service_from_flags(&f).unwrap(), ServiceDist::Constant(1));
    }

    #[test]
    fn service_constant_m() {
        let f = parse_flags(&args(&["--m", "4"])).unwrap();
        assert_eq!(service_from_flags(&f).unwrap(), ServiceDist::Constant(4));
    }

    #[test]
    fn service_geometric() {
        let f = parse_flags(&args(&["--geometric-mu", "0.25"])).unwrap();
        assert_eq!(
            service_from_flags(&f).unwrap(),
            ServiceDist::Geometric(0.25)
        );
    }

    #[test]
    fn service_mix() {
        let f = parse_flags(&args(&["--mix", "4:0.5,8:0.5"])).unwrap();
        assert_eq!(
            service_from_flags(&f).unwrap(),
            ServiceDist::Mixed(vec![(4, 0.5), (8, 0.5)])
        );
    }

    #[test]
    fn service_mix_rejects_malformed() {
        let f = parse_flags(&args(&["--mix", "4-0.5"])).unwrap();
        assert!(service_from_flags(&f).is_err());
        let f = parse_flags(&args(&["--mix", "x:0.5"])).unwrap();
        assert!(service_from_flags(&f).is_err());
    }

    #[test]
    fn service_mix_rejects_out_of_range_probabilities() {
        // Regression: probabilities outside [0,1] passed straight
        // through to ServiceDist::validate, which panics.
        let f = parse_flags(&args(&["--mix", "4:1.5,8:-0.5"])).unwrap();
        let err = service_from_flags(&f).unwrap_err();
        assert!(err.contains("probability in [0, 1]"), "{err}");
    }

    #[test]
    fn service_mix_rejects_bad_total() {
        let f = parse_flags(&args(&["--mix", "4:0.5,8:0.6"])).unwrap();
        let err = service_from_flags(&f).unwrap_err();
        assert!(err.contains("sum to 1"), "{err}");
        // A sum within 1e-9 of 1 is accepted (float-friendly thirds).
        let f = parse_flags(&args(&[
            "--mix",
            "1:0.3333333333,2:0.3333333333,3:0.3333333334",
        ]))
        .unwrap();
        assert!(service_from_flags(&f).is_ok());
    }

    #[test]
    fn service_mix_rejects_zero_size() {
        let f = parse_flags(&args(&["--mix", "0:1.0"])).unwrap();
        let err = service_from_flags(&f).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
    }

    #[test]
    fn service_geometric_rejects_out_of_domain_mu() {
        // Regression: --geometric-mu outside (0,1] reached the model
        // constructors unchecked.
        for bad in ["0", "-0.25", "1.5", "nan"] {
            let f = parse_flags(&args(&["--geometric-mu", bad])).unwrap();
            let err = service_from_flags(&f).unwrap_err();
            assert!(err.contains("geometric-mu"), "{bad}: {err}");
        }
        let f = parse_flags(&args(&["--geometric-mu", "1.0"])).unwrap();
        assert_eq!(service_from_flags(&f).unwrap(), ServiceDist::Geometric(1.0));
    }

    #[test]
    fn service_constant_rejects_zero_m() {
        let f = parse_flags(&args(&["--m", "0"])).unwrap();
        let err = service_from_flags(&f).unwrap_err();
        assert!(err.contains("--m must be at least 1"), "{err}");
    }

    #[test]
    fn check_prob_bounds() {
        assert!(check_prob("--p", 0.0).is_ok());
        assert!(check_prob("--p", 1.0).is_ok());
        assert!(check_prob("--p", -0.1).is_err());
        assert!(check_prob("--p", 1.1).is_err());
        assert!(check_prob("--p", f64::NAN).is_err());
    }
}
