//! Argument parsing for the `banyan` CLI (no external parser crates).
//!
//! Flags are `--name value`; a trailing flag with no value is boolean
//! (`"true"`). [`service_from_flags`] builds a [`ServiceDist`] from
//! `--m`, `--geometric-mu`, or `--mix SIZE:PROB,SIZE:PROB,…`.

use banyan_sim::traffic::ServiceDist;
use std::collections::HashMap;

/// Parsed `--flag value` pairs.
pub type Flags = HashMap<String, String>;

/// Parses `--name value` pairs; a flag without a following value becomes
/// the boolean `"true"`.
pub fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut map = Flags::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        let Some(name) = a.strip_prefix("--") else {
            return Err(format!("expected --flag, got '{a}'"));
        };
        // A token starting with "--" is the next flag, not this flag's
        // value — so `--quantiles --p 0.5` parses as boolean + pair.
        match it.peek() {
            Some(v) if !v.starts_with("--") => {
                map.insert(name.to_string(), it.next().expect("peeked").clone());
            }
            _ => {
                map.insert(name.to_string(), "true".to_string());
            }
        }
    }
    Ok(map)
}

/// Rejects flags that are not in `known` — previously unknown flags were
/// silently ignored, so a typo like `--stage 6` ran with the default
/// stage count. The error lists the offending flag and, when an entry of
/// `known` is within Levenshtein distance 2, suggests it. Flags are
/// checked in sorted order so the first error is deterministic.
pub fn validate_flags(flags: &Flags, known: &[&str]) -> Result<(), String> {
    let mut names: Vec<&str> = flags.keys().map(String::as_str).collect();
    names.sort_unstable();
    for name in names {
        if known.contains(&name) {
            continue;
        }
        let suggestion = known
            .iter()
            .map(|k| (levenshtein(name, k), *k))
            .filter(|&(d, _)| d <= 2)
            .min();
        let mut msg = format!("unknown flag --{name}");
        if let Some((_, k)) = suggestion {
            msg.push_str(&format!(" (did you mean --{k}?)"));
        } else {
            let mut all: Vec<&str> = known.to_vec();
            all.sort_unstable();
            msg.push_str(&format!(
                " (known flags: {})",
                all.iter()
                    .map(|k| format!("--{k}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            ));
        }
        return Err(msg);
    }
    Ok(())
}

/// Edit distance between two ASCII flag names (two-row DP).
fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<u8> = a.bytes().collect();
    let b: Vec<u8> = b.bytes().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Fetches a typed flag with a default.
pub fn get<T: std::str::FromStr>(flags: &Flags, name: &str, default: T) -> Result<T, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid value '{v}' for --{name}")),
    }
}

/// Fetches a probability flag, rejecting values outside `[0, 1]` with a
/// clean error (instead of letting the model constructors panic).
pub fn get_prob(flags: &Flags, name: &str, default: f64) -> Result<f64, String> {
    let v: f64 = get(flags, name, default)?;
    if (0.0..=1.0).contains(&v) {
        Ok(v)
    } else {
        Err(format!("--{name} must be a probability in [0, 1], got {v}"))
    }
}

/// Builds the service distribution from `--geometric-mu`, `--mix`, or
/// `--m` (in that priority order; default constant 1).
pub fn service_from_flags(flags: &Flags) -> Result<ServiceDist, String> {
    if let Some(mu) = flags.get("geometric-mu") {
        let mu: f64 = mu
            .parse()
            .map_err(|_| "invalid --geometric-mu".to_string())?;
        return Ok(ServiceDist::Geometric(mu));
    }
    if let Some(mix) = flags.get("mix") {
        let mut sizes = Vec::new();
        for part in mix.split(',') {
            let (m, g) = part
                .split_once(':')
                .ok_or_else(|| format!("bad --mix entry '{part}' (want SIZE:PROB)"))?;
            sizes.push((
                m.parse().map_err(|_| "bad size in --mix".to_string())?,
                g.parse().map_err(|_| "bad prob in --mix".to_string())?,
            ));
        }
        return Ok(ServiceDist::Mixed(sizes));
    }
    Ok(ServiceDist::Constant(get(flags, "m", 1u32)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_pairs_and_booleans() {
        let f = parse_flags(&args(&["--k", "4", "--p", "0.5", "--quantiles"])).unwrap();
        assert_eq!(f.get("k").unwrap(), "4");
        assert_eq!(f.get("p").unwrap(), "0.5");
        assert_eq!(f.get("quantiles").unwrap(), "true");
    }

    #[test]
    fn boolean_flag_before_other_flags() {
        let f = parse_flags(&args(&["--quantiles", "--p", "0.8"])).unwrap();
        assert_eq!(f.get("quantiles").unwrap(), "true");
        assert_eq!(f.get("p").unwrap(), "0.8");
    }

    #[test]
    fn rejects_positional_arguments() {
        let err = parse_flags(&args(&["bogus"])).unwrap_err();
        assert!(err.contains("bogus"));
    }

    #[test]
    fn validate_accepts_known_flags() {
        let f = parse_flags(&args(&["--k", "4", "--p", "0.5"])).unwrap();
        assert!(validate_flags(&f, &["k", "p", "m"]).is_ok());
    }

    #[test]
    fn validate_rejects_unknown_with_suggestion() {
        // `--stage` instead of `--stages`: previously silently ignored.
        let f = parse_flags(&args(&["--stage", "6"])).unwrap();
        let err = validate_flags(&f, &["k", "p", "stages"]).unwrap_err();
        assert!(err.contains("unknown flag --stage"), "{err}");
        assert!(err.contains("did you mean --stages?"), "{err}");
    }

    #[test]
    fn validate_lists_known_flags_when_no_near_match() {
        let f = parse_flags(&args(&["--bananas", "6"])).unwrap();
        let err = validate_flags(&f, &["k", "p", "stages"]).unwrap_err();
        assert!(err.contains("unknown flag --bananas"), "{err}");
        assert!(err.contains("known flags: --k --p --stages"), "{err}");
    }

    #[test]
    fn validate_reports_first_unknown_in_sorted_order() {
        let f = parse_flags(&args(&["--zzz", "1", "--aaa", "2"])).unwrap();
        let err = validate_flags(&f, &["k"]).unwrap_err();
        assert!(err.contains("--aaa"), "{err}");
    }

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("stage", "stages"), 1);
        assert_eq!(levenshtein("thread", "threads"), 1);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
    }

    #[test]
    fn typed_get_with_default() {
        let f = parse_flags(&args(&["--k", "8"])).unwrap();
        assert_eq!(get(&f, "k", 2u32).unwrap(), 8);
        assert_eq!(get(&f, "stages", 6u32).unwrap(), 6);
        assert!((get(&f, "p", 0.5f64).unwrap() - 0.5).abs() < 1e-15);
    }

    #[test]
    fn typed_get_reports_bad_values() {
        let f = parse_flags(&args(&["--k", "banana"])).unwrap();
        let err = get(&f, "k", 2u32).unwrap_err();
        assert!(err.contains("banana"));
    }

    #[test]
    fn service_default_is_unit() {
        let f = Flags::new();
        assert_eq!(service_from_flags(&f).unwrap(), ServiceDist::Constant(1));
    }

    #[test]
    fn service_constant_m() {
        let f = parse_flags(&args(&["--m", "4"])).unwrap();
        assert_eq!(service_from_flags(&f).unwrap(), ServiceDist::Constant(4));
    }

    #[test]
    fn service_geometric() {
        let f = parse_flags(&args(&["--geometric-mu", "0.25"])).unwrap();
        assert_eq!(
            service_from_flags(&f).unwrap(),
            ServiceDist::Geometric(0.25)
        );
    }

    #[test]
    fn service_mix() {
        let f = parse_flags(&args(&["--mix", "4:0.5,8:0.5"])).unwrap();
        assert_eq!(
            service_from_flags(&f).unwrap(),
            ServiceDist::Mixed(vec![(4, 0.5), (8, 0.5)])
        );
    }

    #[test]
    fn service_mix_rejects_malformed() {
        let f = parse_flags(&args(&["--mix", "4-0.5"])).unwrap();
        assert!(service_from_flags(&f).is_err());
        let f = parse_flags(&args(&["--mix", "x:0.5"])).unwrap();
        assert!(service_from_flags(&f).is_err());
    }
}
