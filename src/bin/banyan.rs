//! `banyan` — command-line front end to the waiting-time models and the
//! simulator, in the spirit of the design studies the formulas were
//! built for (Ultracomputer / RP3 sizing).
//!
//! ```text
//! banyan first-stage --k 2 --p 0.5 --m 1
//! banyan first-stage --k 2 --p 0.5 --geometric-mu 0.5
//! banyan total --k 2 --stages 12 --p 0.5 --m 1 [--quantiles]
//! banyan simulate --k 2 --stages 6 --p 0.5 --m 1 [--cycles N] [--q HOT] [--capacity C]
//!                 [--reps R] [--threads T] [--telemetry FILE]
//!                 [--dist-out FILE] [--trace-out FILE] [--progress]
//! banyan report --k 2 --stages 6 --p 0.5 --m 1 [--cycles N] [--reps R]
//! banyan pmf --k 2 --p 0.5 --m 1 --len 32
//! banyan serve --addr 127.0.0.1:7070 [--threads N] [--cache-cap N]
//!              [--drift-threshold KS] [--telemetry FILE]
//!              [--access-log FILE] [--admin-port PORT] [--drift-poll-ms MS]
//! ```
//!
//! Flags are `--name value`; anything unknown is an error with a
//! "did you mean" suggestion. Simulation results go to stdout;
//! diagnostics (`--progress` heartbeats, telemetry notices) go to
//! stderr, so stdout stays machine-parseable. This binary deliberately
//! avoids external argument-parsing crates.

use banyan_repro::cli::{get, get_prob, parse_flags, service_from_flags, validate_flags, Flags};
use banyan_repro::obs::json::JsonObject;
use banyan_repro::obs::msgtrace::{self, MsgTracer};
use banyan_repro::obs::tail::{drift_array_json, drift_line, table_cdf, DriftReport};
use banyan_repro::obs::trace::{trace_json_from_events, write_trace};
use banyan_repro::obs::DistSketch;
use banyan_repro::prelude::*;
use banyan_repro::sim::{run_network_replicated_traced, ReplicationEngine};
use std::process::ExitCode;

/// Known flags per subcommand: parse_flags accepts any `--name value`
/// pair, so each command validates against its own set before running.
const FIRST_STAGE_FLAGS: &[&str] = &["k", "p", "q", "b", "m", "geometric-mu", "mix"];
const TOTAL_FLAGS: &[&str] = &["k", "stages", "p", "m", "quantiles"];
const SIMULATE_FLAGS: &[&str] = &[
    "k",
    "stages",
    "p",
    "q",
    "cycles",
    "seed",
    "m",
    "geometric-mu",
    "mix",
    "capacity",
    "reps",
    "threads",
    "engine",
    "telemetry",
    "dist-out",
    "trace-out",
    "msg-trace",
    "msg-trace-rate",
    "progress",
];
const REPORT_FLAGS: &[&str] = &[
    "k",
    "stages",
    "p",
    "m",
    "cycles",
    "seed",
    "reps",
    "threads",
    "progress",
    "json",
    "fail-on-drift",
];
const TRACE_FLAGS: &[&str] = &["file", "chrome-out"];
const PMF_FLAGS: &[&str] = &["k", "p", "m", "len"];
const FLOW_FLAGS: &[&str] = &[
    "topo", "k", "stages", "extra", "rows", "cols", "leaves", "spines", "hosts", "p", "m", "json",
    "dist-out", "cycles", "reps", "seed",
];
const SERVE_FLAGS: &[&str] = &[
    "addr",
    "threads",
    "cache-cap",
    "drift-threshold",
    "probe-cycles",
    "probe-reps",
    "sim-cycles",
    "sim-reps",
    "seed",
    "telemetry",
    "access-log",
    "access-log-sample-ms",
    "admin-port",
    "drift-poll-ms",
    "no-rolling",
];

/// Schema identifier of the `--dist-out` distribution dump.
const DIST_SCHEMA: &str = "banyan-obs/dist/v1";

fn cmd_first_stage(flags: &Flags) -> Result<(), String> {
    let k: u32 = get(flags, "k", 2)?;
    let p: f64 = get_prob(flags, "p", 0.5)?;
    let q: f64 = get_prob(flags, "q", 0.0)?;
    let b: u32 = get(flags, "b", 1)?;
    match service_from_flags(flags)? {
        ServiceDist::Geometric(mu) => {
            let fs = geometric_queue(k, p, mu).map_err(|e| e.to_string())?;
            print_first_stage(&fs);
        }
        ServiceDist::Mixed(sizes) => {
            let fs = mixed_queue(k, p, sizes).map_err(|e| e.to_string())?;
            print_first_stage(&fs);
        }
        ServiceDist::Constant(m) => {
            if q > 0.0 {
                if m != 1 {
                    return Err("--q currently supports m = 1 only".into());
                }
                let fs = nonuniform_queue(k, p, q, b).map_err(|e| e.to_string())?;
                print_first_stage(&fs);
            } else if b > 1 {
                if m != 1 {
                    return Err("--b currently supports m = 1 only".into());
                }
                let fs = bulk_queue(k, p, b).map_err(|e| e.to_string())?;
                print_first_stage(&fs);
            } else {
                let fs = uniform_queue(k, p, m).map_err(|e| e.to_string())?;
                print_first_stage(&fs);
            }
        }
    }
    Ok(())
}

fn print_first_stage<R: Pgf, U: Pgf>(fs: &FirstStage<R, U>) {
    println!("traffic intensity rho = {:.6}", fs.rho());
    println!("E(w)   = {:.6}", fs.mean_wait());
    println!("Var(w) = {:.6}", fs.var_wait());
    println!("E(delay)   = {:.6}", fs.mean_delay());
    println!("Var(delay) = {:.6}", fs.var_delay());
    let (es, vs) = fs.unfinished_work_moments();
    println!("E(backlog) = {:.6}, Var(backlog) = {:.6}", es, vs);
    println!("P(idle)    = {:.6}", fs.idle_probability());
    if let Some(r) = fs.tail_decay_rate() {
        println!("tail: P(w=j) ~ C * {r:.6}^j");
    }
    for &q in &[0.5, 0.9, 0.99, 0.999] {
        println!("wait p{:<4} = {}", (q * 1000.0) as u32, fs.wait_quantile(q));
    }
}

fn cmd_total(flags: &Flags) -> Result<(), String> {
    let k: u32 = get(flags, "k", 2)?;
    let n: u32 = get(flags, "stages", 6)?;
    let p: f64 = get_prob(flags, "p", 0.5)?;
    let m: u32 = get(flags, "m", 1)?;
    if (m as f64) * p >= 1.0 {
        return Err(format!("unstable load: rho = {}", m as f64 * p));
    }
    let t = TotalWaiting::new(k, n, p, m);
    println!("stages = {n}, rho = {:.4}", t.rho());
    println!("E(total waiting)   = {:.6}", t.mean_total());
    println!("Var(total waiting) = {:.6}  (independence: {:.6})",
        t.var_total(), t.var_total_independent());
    println!("total service (cut-through) = {}", t.total_service());
    println!("E(total delay)     = {:.6}", t.mean_total_delay());
    let (a, b) = t.cov_params();
    println!("covariance model: a = {a:.4}, b = {b:.4}");
    if let Some(g) = t.gamma() {
        println!("gamma approx: shape = {:.4}, scale = {:.4}", g.shape(), g.scale());
        if flags.contains_key("quantiles") {
            for &q in &[0.5, 0.9, 0.99, 0.999] {
                println!(
                    "delay p{:<4} = {:.2}",
                    (q * 1000.0) as u32,
                    t.delay_quantile(q)
                );
            }
        }
    }
    Ok(())
}

/// Builds observed-vs-analytic drift reports from the per-stage wait
/// sketches the instrumented run captured: stage 1 against the exact
/// Theorem 1 distribution, stages ≥ 2 against the gamma fitted to the
/// §IV stage-constant moments, and the end-to-end total against the §V
/// gamma. Returns an empty list for workloads outside the analytic
/// model's reach (non-constant service, hot-spot traffic, finite
/// buffers, unstable load).
fn drift_reports(
    tel: &Telemetry,
    k: u32,
    n: u32,
    p: f64,
    q: f64,
    service: &ServiceDist,
    finite_buffers: bool,
) -> Vec<DriftReport> {
    let ServiceDist::Constant(m) = service else {
        return Vec::new();
    };
    if q > 0.0 || finite_buffers {
        return Vec::new();
    }
    let Ok(fs) = uniform_queue(k, p, *m) else {
        return Vec::new();
    };
    let sc = StageConstants::paper();
    let tail_rate = fs.tail_decay_rate();
    let mf = f64::from(*m);
    let mut out = Vec::new();
    for i in 1..=n {
        let name = format!("net.wait.stage{i:02}");
        let Some(sk) = tel.sketches().get(&name) else {
            continue;
        };
        if sk.count() == 0 {
            continue;
        }
        let max = sk.pmf_points().last().map_or(0, |&(v, _)| v) as usize;
        let report = if i == 1 {
            // Exact Theorem 1 CDF, tabulated once over the support.
            let table = fs.wait_cdf_table(max + 2);
            DriftReport::against(
                &name,
                &sk,
                |x| table_cdf(&table, x),
                fs.mean_wait(),
                tail_rate,
            )
        } else {
            // §IV approximation: gamma fitted to the stage-i moments.
            let (wm, vm) = (sc.w_stage_m(i, p, k, mf), sc.v_stage_m(i, p, k, mf));
            let Some(g) = Gamma::from_mean_var(wm, vm) else {
                continue;
            };
            DriftReport::against(&name, &sk, |x| g.cdf(x), wm, tail_rate)
        };
        out.push(report);
    }
    if let Some(sk) = tel.sketches().get("net.wait.total") {
        if sk.count() > 0 {
            let t = TotalWaiting::new(k, n, p, *m);
            if let Some(g) = t.gamma() {
                out.push(DriftReport::against(
                    "net.wait.total",
                    &sk,
                    |x| g.cdf(x),
                    t.mean_total(),
                    None,
                ));
            }
        }
    }
    out
}

/// Parses `--engine auto|scalar|lanes|lanesN` (N = lane width 1..=64).
fn engine_from_flags(flags: &Flags) -> Result<ReplicationEngine, String> {
    match flags.get("engine").map(String::as_str) {
        None | Some("auto") => Ok(ReplicationEngine::Auto),
        Some("scalar") => Ok(ReplicationEngine::Scalar),
        Some("lanes") => Ok(ReplicationEngine::Lanes(32)),
        Some(other) => match other.strip_prefix("lanes").and_then(|w| w.parse().ok()) {
            Some(w) if (1..=64usize).contains(&w) => Ok(ReplicationEngine::Lanes(w)),
            _ => Err(format!(
                "--engine must be auto, scalar, lanes, or lanesN (N in 1..=64), got '{other}'"
            )),
        },
    }
}

fn cmd_simulate(flags: &Flags) -> Result<(), String> {
    let k: u32 = get(flags, "k", 2)?;
    let n: u32 = get(flags, "stages", 6)?;
    let p: f64 = get_prob(flags, "p", 0.5)?;
    let q: f64 = get_prob(flags, "q", 0.0)?;
    let cycles: u64 = get(flags, "cycles", 20_000u64)?;
    let seed: u64 = get(flags, "seed", 1u64)?;
    let reps: u32 = get(flags, "reps", 1u32)?;
    if reps == 0 {
        return Err("--reps must be at least 1".into());
    }
    let threads: usize = get(flags, "threads", 1usize)?;
    let service = service_from_flags(flags)?;
    let service_desc = format!("{service:?}");
    let mut cfg = NetworkConfig::new(k, n, Workload { p, q, service });
    cfg.measure_cycles = cycles;
    cfg.warmup_cycles = (cycles / 10).max(500);
    cfg.seed = seed;
    if let Some(cap) = flags.get("capacity") {
        let cap: usize = cap
            .parse()
            .map_err(|_| "invalid --capacity".to_string())?;
        if cap == 0 {
            return Err("--capacity must be at least 1 message".into());
        }
        cfg.buffer_capacity = Some(cap);
    }
    let engine = engine_from_flags(flags)?;
    let telemetry_path = flags.get("telemetry").cloned();
    let dist_path = flags.get("dist-out").cloned();
    let trace_path = flags.get("trace-out").cloned();
    let msg_trace_path = flags.get("msg-trace").cloned();
    if msg_trace_path.is_none() && flags.contains_key("msg-trace-rate") {
        return Err("--msg-trace-rate requires --msg-trace FILE".into());
    }
    let msg_rate: f64 = get_prob(flags, "msg-trace-rate", 0.01)?;
    let tracer = msg_trace_path.as_ref().map(|_| MsgTracer::new(msg_rate));
    // Any observability output needs the instrumented collection path;
    // stdout stays byte-identical either way. (The message tracer is
    // independent of telemetry: it has its own sink.)
    let mut tcfg = if telemetry_path.is_some() || dist_path.is_some() || trace_path.is_some() {
        TelemetryConfig::on()
    } else {
        TelemetryConfig::off()
    };
    if flags.contains_key("progress") {
        tcfg = tcfg.with_progress();
    }
    let tel = Telemetry::new(tcfg);
    let started = std::time::Instant::now();
    let stats = run_network_replicated_traced(&cfg, reps, threads, &tel, engine, tracer.as_ref());
    let run_secs = started.elapsed().as_secs_f64();
    // Telemetry never touches the RNG or the dynamics, so everything
    // printed below (stdout) is byte-identical with or without
    // --progress/--telemetry — only stderr gains output.
    tel.heartbeat_final();
    println!("delivered {} messages over {} cycles", stats.delivered, stats.cycles);
    if stats.rejected_total > 0 {
        let offered = stats.injected_total + stats.rejected_total;
        println!(
            "rejected {} of {} offered ({:.2}%)",
            stats.rejected_total,
            offered,
            100.0 * stats.rejected_total as f64 / offered as f64
        );
    }
    for (i, w) in stats.stage_waits.iter().enumerate() {
        println!(
            "stage {:>2}: E(w) = {:.4}  Var(w) = {:.4}",
            i + 1,
            w.mean(),
            w.variance()
        );
    }
    println!(
        "total waiting: mean = {:.4}, var = {:.4}, p99 = {}",
        stats.total_wait.mean(),
        stats.total_wait.variance(),
        stats.total_hist.quantile(0.99).unwrap_or(0)
    );
    // Drift gauges + reports: observed per-stage pmfs vs Theorem 1 /
    // §IV–§V analytics, computed before any artifact is written so the
    // manifest's metrics snapshot includes the ppm gauges.
    let drift = if tel.metrics_enabled() {
        let reports = drift_reports(
            &tel,
            k,
            n,
            p,
            q,
            &cfg.workload.service,
            cfg.buffer_capacity.is_some(),
        );
        for r in &reports {
            tel.registry()
                .gauge(&format!("net.drift.ks_ppm.{}", r.name))
                .set(r.ks_ppm());
        }
        reports
    } else {
        Vec::new()
    };
    if let Some(path) = &dist_path {
        let mut o = JsonObject::new();
        o.field_str("schema", DIST_SCHEMA)
            .field_str("name", "banyan-simulate")
            .field_u64("k", u64::from(k))
            .field_u64("stages", u64::from(n))
            .field_f64("p", p)
            .field_str("service", &service_desc)
            .field_u64("seed", seed)
            .field_u64("reps", u64::from(reps))
            .field_raw("distributions", &tel.sketches().snapshot_json())
            .field_raw("drift", &drift_array_json(&drift));
        let mut json = o.finish_pretty(2);
        json.push('\n');
        if let Some(dir) = std::path::Path::new(path).parent().filter(|d| !d.as_os_str().is_empty())
        {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create directory for --dist-out {path}: {e}"))?;
        }
        std::fs::write(path, json).map_err(|e| format!("cannot write --dist-out {path}: {e}"))?;
        eprintln!("distribution dump written to {path}");
    }
    if let Some(path) = &trace_path {
        write_trace(std::path::Path::new(path), tel.spans())
            .map_err(|e| format!("cannot write --trace-out {path}: {e}"))?;
        eprintln!("trace written to {path}");
    }
    if let Some(path) = &msg_trace_path {
        let tracer = tracer.as_ref().expect("tracer exists when --msg-trace is set");
        let records = tracer.finish();
        let mut h = msgtrace::header_object("banyan-simulate", n, seed, reps, tracer.rate());
        h.field_u64("k", u64::from(k))
            .field_f64("p", p)
            .field_str("service", &service_desc);
        if let ServiceDist::Constant(m) = &cfg.workload.service {
            h.field_u64("m", u64::from(*m));
        }
        if q > 0.0 {
            h.field_f64("q", q);
        }
        if let Some(cap) = cfg.buffer_capacity {
            h.field_u64("capacity", cap as u64);
        }
        let doc = msgtrace::render_jsonl(&h.finish(), &records);
        if let Some(dir) = std::path::Path::new(path).parent().filter(|d| !d.as_os_str().is_empty())
        {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create directory for --msg-trace {path}: {e}"))?;
        }
        std::fs::write(path, doc).map_err(|e| format!("cannot write --msg-trace {path}: {e}"))?;
        eprintln!(
            "message trace written to {path} ({} records, rate {})",
            records.len(),
            tracer.rate()
        );
    }
    if let Some(path) = telemetry_path {
        let mut m = Manifest::new("banyan-simulate");
        m.config("k", k)
            .config("stages", n)
            .config("p", p)
            .config("q", q)
            .config("cycles", cycles)
            .config("service", &service_desc)
            .seed("base", seed)
            .reps(reps)
            .threads(threads)
            .phase("run", run_secs);
        if let Some(cap) = cfg.buffer_capacity {
            m.config("capacity", cap);
        }
        if let Some(dist) = &dist_path {
            m.artifact(dist);
        }
        if let Some(trace) = &trace_path {
            m.artifact(trace);
        }
        if let Some(mt) = &msg_trace_path {
            m.artifact(mt);
        }
        if !drift.is_empty() {
            m.section_raw("drift", &drift_array_json(&drift));
        }
        let written = m
            .write(&path, Some(&tel))
            .map_err(|e| format!("cannot write --telemetry {path}: {e}"))?;
        eprintln!("telemetry manifest written to {}", written.display());
    }
    Ok(())
}

/// `banyan report` — run the simulator with distribution capture on and
/// print an observed-vs-analytic table: per-stage and total exact
/// moments, KS drift against Theorem 1 (stage 1), the §IV
/// stage-constant gamma (later stages) and the §V gamma (total), plus
/// fitted vs analytic geometric tail rates and report quantiles.
fn cmd_report(flags: &Flags) -> Result<(), String> {
    let k: u32 = get(flags, "k", 2)?;
    let n: u32 = get(flags, "stages", 6)?;
    let p: f64 = get_prob(flags, "p", 0.5)?;
    let m: u32 = get(flags, "m", 1)?;
    let cycles: u64 = get(flags, "cycles", 20_000u64)?;
    let seed: u64 = get(flags, "seed", 1u64)?;
    let reps: u32 = get(flags, "reps", 1u32)?;
    if reps == 0 {
        return Err("--reps must be at least 1".into());
    }
    let threads: usize = get(flags, "threads", 1usize)?;
    if (f64::from(m)) * p >= 1.0 {
        return Err(format!("unstable load: rho = {}", f64::from(m) * p));
    }
    let service = ServiceDist::Constant(m);
    let mut cfg = NetworkConfig::new(k, n, Workload { p, q: 0.0, service: service.clone() });
    cfg.measure_cycles = cycles;
    cfg.warmup_cycles = (cycles / 10).max(500);
    cfg.seed = seed;
    let mut tcfg = TelemetryConfig::on();
    if flags.contains_key("progress") {
        tcfg = tcfg.with_progress();
    }
    let tel = Telemetry::new(tcfg);
    let stats = run_network_replicated_instrumented(&cfg, reps, threads, &tel);
    tel.heartbeat_final();
    let drift = drift_reports(&tel, k, n, p, 0.0, &service, false);
    if drift.is_empty() {
        return Err("no delivered messages to report on (try more --cycles)".into());
    }
    if flags.contains_key("json") {
        // Machine-readable drift table for CI gates and dashboards.
        let mut o = JsonObject::new();
        o.field_str("schema", "banyan-obs/report/v1")
            .field_u64("k", u64::from(k))
            .field_u64("stages", u64::from(n))
            .field_f64("p", p)
            .field_u64("m", u64::from(m))
            .field_u64("cycles", cycles)
            .field_u64("seed", seed)
            .field_u64("reps", u64::from(reps))
            .field_u64("delivered", stats.delivered)
            .field_raw("drift", &drift_array_json(&drift));
        let mut json = o.finish_pretty(2);
        json.push('\n');
        print!("{json}");
    } else {
        println!(
            "waiting-time distributions, observed vs analytic (k={k}, stages={n}, p={p}, m={m}, \
             {} messages)",
            stats.delivered
        );
        for r in &drift {
            println!("{}", drift_line(r));
        }
        println!("quantiles (observed):");
        for (name, sk) in tel.sketches().snapshot() {
            let qs: Vec<String> = banyan_repro::obs::sketch::REPORT_QUANTILES
                .iter()
                .map(|&level| {
                    format!(
                        "{} {}",
                        banyan_repro::obs::sketch::quantile_label(level),
                        sk.quantile(level)
                    )
                })
                .collect();
            println!("  {name:<18} {}", qs.join("  "));
        }
    }
    if flags.contains_key("fail-on-drift") {
        let gate: u64 = get(flags, "fail-on-drift", 0u64)?;
        if gate == 0 {
            return Err("--fail-on-drift needs a positive KS threshold in ppm".into());
        }
        let offenders: Vec<String> = drift
            .iter()
            .filter(|r| r.ks_ppm() > gate)
            .map(|r| format!("{} ks={} ppm", r.name, r.ks_ppm()))
            .collect();
        if !offenders.is_empty() {
            return Err(format!(
                "drift gate exceeded ({} ppm allowed): {}",
                gate,
                offenders.join(", ")
            ));
        }
    }
    Ok(())
}

/// `banyan trace` — inspect a `banyan-obs/msgtrace/v1` file written by
/// `banyan simulate --msg-trace`: validate it, print per-stage
/// observed waiting moments rebuilt from the sampled records, compare
/// them against the analytic model when the header carries the
/// workload (KS drift per stage: Theorem 1 exact for stage 1, the §IV
/// stage-constant gammas beyond, the §V gamma for the total — the
/// drill-down companion to `banyan report`), and list the slowest
/// sampled messages with their full per-stage wait decomposition.
/// `--chrome-out FILE` additionally renders the records as
/// `chrome://tracing` span events (one lane per message).
fn cmd_trace(flags: &Flags) -> Result<(), String> {
    use banyan_repro::obs::json::JsonValue;
    let path = flags.get("file").ok_or("--file FILE is required")?;
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read --file {path}: {e}"))?;
    let parsed = msgtrace::parse_trace(&text).map_err(|e| format!("{path}: {e}"))?;
    let records = &parsed.records;
    let stages_desc = parsed
        .stages
        .map_or("variable".to_string(), |s| s.to_string());
    println!(
        "{}: {} sampled records (stages {stages_desc}, seed {}, reps {}, rate {})",
        parsed.name,
        records.len(),
        parsed.seed,
        parsed.reps,
        parsed.rate
    );
    // Write the artifact before the (long) stdout report: a reader
    // closing the pipe early must not cost the --chrome-out file.
    if let Some(out) = flags.get("chrome-out") {
        let events = msgtrace::chrome_events(records);
        let json = trace_json_from_events(&events);
        if let Some(dir) = std::path::Path::new(out).parent().filter(|d| !d.as_os_str().is_empty())
        {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create directory for --chrome-out {out}: {e}"))?;
        }
        std::fs::write(out, json).map_err(|e| format!("cannot write --chrome-out {out}: {e}"))?;
        eprintln!("chrome trace written to {out} ({} events)", events.len());
    }
    if records.is_empty() {
        println!("no records to analyze (raise --msg-trace-rate or --cycles)");
        return Ok(());
    }
    // Rebuild the per-stage and total pmfs from the records. Flow
    // traces have per-record hop counts; stage j covers the records
    // long enough to reach it.
    let max_hops = records.iter().map(|r| r.waits.len()).max().unwrap_or(0);
    let mut stage_sk: Vec<DistSketch> = (0..max_hops).map(|_| DistSketch::new_exact()).collect();
    let mut total_sk = DistSketch::new_exact();
    for r in records {
        for (j, &w) in r.waits.iter().enumerate() {
            stage_sk[j].record(u64::from(w));
        }
        total_sk.record(r.total_wait());
    }
    // Drift vs the analytic model when the header identifies a uniform
    // constant-service workload (the model's reach — mirrors the
    // gating in drift_reports).
    let hdr = &parsed.header;
    let hdr_u32 = |key: &str| hdr.get(key).and_then(JsonValue::as_u64).map(|v| v as u32);
    let workload = match (parsed.stages, hdr_u32("k"), hdr.get("p").and_then(JsonValue::as_f64)) {
        (Some(n), Some(k), Some(p)) => Some((n, k, p, hdr_u32("m").unwrap_or(1))),
        _ => None,
    };
    let finite = hdr.get("capacity").is_some();
    let q = hdr.get("q").and_then(JsonValue::as_f64).unwrap_or(0.0);
    let drift = workload.map_or_else(Vec::new, |(n, k, p, m)| {
        let tel = Telemetry::new(TelemetryConfig::on());
        for (j, sk) in stage_sk.iter().enumerate() {
            tel.sketches()
                .merge_sketch(&format!("net.wait.stage{:02}", j + 1), sk);
        }
        tel.sketches().merge_sketch("net.wait.total", &total_sk);
        drift_reports(&tel, k, n, p, q, &ServiceDist::Constant(m), finite)
    });
    if drift.is_empty() {
        println!("observed (no analytic reference for this workload):");
        for (j, sk) in stage_sk.iter().enumerate() {
            println!(
                "  stage {:>2}: n = {:>7}  E(w) = {:.4}  Var(w) = {:.4}  p99 = {}",
                j + 1,
                sk.count(),
                sk.mean(),
                sk.variance(),
                sk.quantile(0.99)
            );
        }
        println!(
            "  total   : n = {:>7}  E(w) = {:.4}  Var(w) = {:.4}  p99 = {}",
            total_sk.count(),
            total_sk.mean(),
            total_sk.variance(),
            total_sk.quantile(0.99)
        );
    } else {
        println!("observed vs analytic (sampled records only):");
        for r in &drift {
            println!("{}", drift_line(r));
        }
    }
    // The slowest sampled messages, fully decomposed — the provenance
    // view aggregate reports cannot give.
    let mut slowest: Vec<&banyan_repro::obs::MsgRecord> = records.iter().collect();
    slowest.sort_by_key(|r| std::cmp::Reverse(r.total_wait()));
    println!("slowest sampled messages:");
    for r in slowest.iter().take(5) {
        let waits: Vec<String> = r.waits.iter().map(|w| w.to_string()).collect();
        let digits = if r.digits.is_empty() {
            String::new()
        } else {
            let d: Vec<String> = r.digits.iter().map(|d| d.to_string()).collect();
            format!("  digits {}", d.join(""))
        };
        println!(
            "  rep {:>3} msg {:>8}: injected @{:<8} total {:>5}  waits [{}]{digits}",
            r.rep,
            r.ord,
            r.inject,
            r.total_wait(),
            waits.join(", ")
        );
    }
    Ok(())
}

fn cmd_pmf(flags: &Flags) -> Result<(), String> {
    let k: u32 = get(flags, "k", 2)?;
    let p: f64 = get_prob(flags, "p", 0.5)?;
    let m: u32 = get(flags, "m", 1)?;
    let len: usize = get(flags, "len", 32usize)?;
    let fs = uniform_queue(k, p, m).map_err(|e| e.to_string())?;
    let pmf = fs.pmf(len);
    println!("{:>5}  {:>12}  {:>12}", "w", "P(w)", "P(W<=w)");
    let mut acc = 0.0;
    for (v, &pr) in pmf.iter().enumerate() {
        acc += pr;
        println!("{v:>5}  {pr:>12.8}  {acc:>12.8}");
    }
    Ok(())
}

/// `banyan flow` — end-to-end waiting/delay analysis of a routed
/// feed-forward topology (mesh, omega, butterfly, fat-tree) via the
/// generalized `banyan-flow` engine. `--json` prints the exact
/// `/v1/flow` answer body (byte-identical to what `banyan serve`
/// returns for the same query); `--dist-out` additionally runs the
/// event-check simulator and dumps per-flow waiting sketches plus KS
/// drift reports against the analytic densities in the standard
/// `banyan-obs/dist/v1` format.
fn cmd_flow(flags: &Flags) -> Result<(), String> {
    use banyan_repro::flow::simulate_network;
    use banyan_repro::serve::flow::{flow_body, FlowQuery, FLOW_FIELDS};
    // The engine fields ride the shared hardened decode path; the
    // CLI-only output flags are stripped first (main already validated
    // the full set against FLOW_FLAGS).
    let mut engine_flags = Flags::new();
    for (name, value) in flags {
        if FLOW_FIELDS.contains(&name.as_str()) {
            engine_flags.insert(name.clone(), value.clone());
        }
    }
    let q = FlowQuery::from_flags(&engine_flags)?;
    let graph = q.build_graph();
    let an = FlowAnalysis::new(&graph)?;
    if flags.contains_key("json") {
        // Byte-identical to GET /v1/flow — verify.sh cross-checks this.
        print!("{}", flow_body(&q)?);
    } else {
        println!(
            "{}: {} nodes, {} links, {} flows (p = {}, m = {})",
            q.topo.label(),
            graph.nodes().len(),
            graph.links().len(),
            graph.flows().len(),
            q.p,
            q.m,
        );
        println!(
            "{:>4}  {:>8} {:>8} {:>4}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}",
            "flow", "src", "dst", "hops", "E(w)", "Var(w)", "E(delay)", "delay p99", "delay p999"
        );
        for (f, flow) in graph.flows().iter().enumerate() {
            println!(
                "{f:>4}  {:>8} {:>8} {:>4}  {:>9.4}  {:>9.4}  {:>9.4}  {:>9.2}  {:>9.2}",
                graph.nodes()[flow.src].name,
                graph.nodes()[flow.dst].name,
                flow.path.len(),
                an.mean_wait(f),
                an.var_wait(f),
                an.mean_delay(f),
                an.delay_quantile(f, 0.99),
                an.delay_quantile(f, 0.999),
            );
        }
    }
    if let Some(path) = flags.get("dist-out") {
        let cycles: u64 = get(flags, "cycles", 20_000u64)?;
        let reps: u32 = get(flags, "reps", 4u32)?;
        let seed: u64 = get(flags, "seed", 1u64)?;
        if reps == 0 {
            return Err("--reps must be at least 1".into());
        }
        let report = simulate_network(
            &graph,
            &FlowSimConfig {
                warmup_cycles: (cycles / 10).max(500),
                measure_cycles: cycles,
                reps,
                seed,
            },
        );
        let tel = Telemetry::new(TelemetryConfig::on());
        let mut drift = Vec::new();
        for (f, sk) in report.flows.iter().enumerate() {
            let name = format!("flow.wait.{f:03}");
            tel.sketches().merge_sketch(&name, sk);
            if sk.count() == 0 {
                continue;
            }
            let table = an.wait_cdf_table(f)?;
            let r = DriftReport::against(&name, sk, |x| table_cdf(&table, x), an.mean_wait(f), None);
            tel.registry()
                .gauge(&format!("net.drift.ks_ppm.{name}"))
                .set(r.ks_ppm());
            drift.push(r);
        }
        let mut o = JsonObject::new();
        o.field_str("schema", DIST_SCHEMA)
            .field_str("name", "banyan-flow")
            .field_str("topo", &q.topo.label())
            .field_f64("p", q.p)
            .field_u64("m", u64::from(q.m))
            .field_u64("cycles", cycles)
            .field_u64("seed", seed)
            .field_u64("reps", u64::from(reps))
            .field_raw("distributions", &tel.sketches().snapshot_json())
            .field_raw("drift", &drift_array_json(&drift));
        let mut json = o.finish_pretty(2);
        json.push('\n');
        if let Some(dir) = std::path::Path::new(path).parent().filter(|d| !d.as_os_str().is_empty())
        {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create directory for --dist-out {path}: {e}"))?;
        }
        std::fs::write(path, json).map_err(|e| format!("cannot write --dist-out {path}: {e}"))?;
        eprintln!("distribution dump written to {path}");
    }
    Ok(())
}

/// `banyan serve` — run the capacity-planning daemon until a client
/// POSTs `/shutdown`, then write the run manifest (when `--telemetry`
/// names a file). The listening line goes to stdout (flushed) so
/// wrappers binding port 0 can discover the ephemeral address.
fn cmd_serve(flags: &Flags) -> Result<(), String> {
    use banyan_repro::serve::{ServeConfig, Server};
    let mut cfg = ServeConfig::default();
    if let Some(addr) = flags.get("addr") {
        cfg.addr = addr.clone();
    }
    cfg.workers = get(flags, "threads", cfg.workers)?;
    cfg.cache_cap = get(flags, "cache-cap", cfg.cache_cap)?;
    // A KS distance is a probability, so --drift-threshold rides the
    // same hardened [0,1] gate as --p and --q.
    cfg.drift_threshold = get_prob(flags, "drift-threshold", cfg.drift_threshold)?;
    cfg.probe_cycles = get(flags, "probe-cycles", cfg.probe_cycles)?;
    cfg.probe_reps = get(flags, "probe-reps", cfg.probe_reps)?;
    cfg.sim_cycles = get(flags, "sim-cycles", cfg.sim_cycles)?;
    cfg.sim_reps = get(flags, "sim-reps", cfg.sim_reps)?;
    cfg.seed = get(flags, "seed", cfg.seed)?;
    if cfg.probe_reps == 0 || cfg.sim_reps == 0 {
        return Err("--probe-reps and --sim-reps must be at least 1".into());
    }
    cfg.access_log = flags.get("access-log").cloned();
    cfg.access_log_sample_ms = get(flags, "access-log-sample-ms", cfg.access_log_sample_ms)?;
    cfg.drift_poll_ms = get(flags, "drift-poll-ms", cfg.drift_poll_ms)?;
    if flags.get("no-rolling").is_some() {
        cfg.rolling = false;
    }
    if let Some(port) = flags.get("admin-port") {
        let port: u16 = port
            .parse()
            .map_err(|_| format!("--admin-port must be a port number, got '{port}'"))?;
        // The admin surface binds the same host as the main listener.
        let host = cfg.addr.rsplit_once(':').map_or("127.0.0.1", |(h, _)| h);
        cfg.admin_addr = Some(format!("{host}:{port}"));
    }
    let telemetry_path = flags.get("telemetry").cloned();
    let tel = Telemetry::new(TelemetryConfig::on());
    let server =
        Server::bind(cfg.clone(), tel).map_err(|e| format!("cannot bind {}: {e}", cfg.addr))?;
    let addr = server.local_addr();
    let state = server.state();
    println!("banyan serve listening on {addr}");
    if let Some(admin) = state.admin_addr() {
        println!("banyan serve admin listening on {admin}");
    }
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    let started = std::time::Instant::now();
    server.run().map_err(|e| format!("serve failed: {e}"))?;
    let run_secs = started.elapsed().as_secs_f64();
    let reg = state.telemetry().registry();
    let served = reg.counter_value("serve.http.responses_total").unwrap_or(0);
    let hits = reg.counter_value("serve.cache.hits").unwrap_or(0);
    let misses = reg.counter_value("serve.cache.misses").unwrap_or(0);
    println!(
        "banyan serve stopped after {run_secs:.2}s: {served} responses, \
         cache {hits} hits / {misses} misses"
    );
    if let Some(path) = telemetry_path {
        let mut m = Manifest::new("banyan-serve");
        m.config("addr", addr)
            .config("threads", cfg.workers)
            .config("cache_cap", cfg.cache_cap)
            .config("drift_threshold", cfg.drift_threshold)
            .config("probe_cycles", cfg.probe_cycles)
            .config("probe_reps", cfg.probe_reps)
            .config("sim_cycles", cfg.sim_cycles)
            .config("sim_reps", cfg.sim_reps)
            .config("drift_poll_ms", cfg.drift_poll_ms)
            .config("rolling", cfg.rolling)
            .config(
                "access_log",
                cfg.access_log.as_deref().unwrap_or("-").to_string(),
            )
            .seed("base", cfg.seed)
            .phase("serve", run_secs);
        let written = m
            .write(&path, Some(state.telemetry()))
            .map_err(|e| format!("cannot write --telemetry {path}: {e}"))?;
        eprintln!("telemetry manifest written to {}", written.display());
    }
    Ok(())
}

const USAGE: &str = "usage: banyan <command> [--flag value ...]\n\
commands:\n  first-stage  exact Theorem-1 analysis of one output port\n  total        total waiting/delay through an n-stage network\n  flow         end-to-end delay per flow on a routed feed-forward topology\n  simulate     run the clocked network simulator\n  report       simulate, then print observed-vs-analytic drift per stage\n  trace        inspect a --msg-trace file (per-stage drift, slowest messages)\n  pmf          print the exact first-stage waiting distribution\n  serve        capacity-planning HTTP daemon (POST /query, GET /metrics)\n\
common flags: --k --p --m --stages --q --b --geometric-mu --mix 4:0.5,8:0.5\n              --cycles --seed --capacity --quantiles --len\n\
flow-only:     --topo mesh|omega|butterfly|fat-tree --rows --cols --extra\n               --leaves --spines --hosts --json (print the /v1/flow body)\n               --dist-out FILE (event-check sketches + KS drift; --cycles\n               --reps --seed size the simulation)\n\
simulate-only: --reps N --threads T (replicated run, merged stats)\n               --engine auto|scalar|lanes|lanesN (replication engine)\n               --telemetry FILE (write a JSON run manifest)\n               --dist-out FILE (per-stage waiting-time pmfs + drift vs theory)\n               --trace-out FILE (chrome://tracing span events)\n               --msg-trace FILE (sampled per-message lifecycle JSONL;\n               --msg-trace-rate R sets the sampling probability, default 0.01)\n               --progress (heartbeat on stderr; stdout unchanged)\n\
report-only:   --json (machine-readable drift table)\n               --fail-on-drift PPM (exit nonzero when any KS gauge exceeds)\n\
trace-only:    --file FILE (the msg-trace JSONL to inspect)\n               --chrome-out FILE (render records as chrome://tracing spans)\n\
serve-only:    --addr HOST:PORT (port 0 = ephemeral) --threads N --cache-cap N\n               --drift-threshold KS --probe-cycles N --probe-reps R\n               --sim-cycles N --sim-reps R --telemetry FILE\n               --access-log FILE (JSONL; --access-log-sample-ms MS rate-limits)\n               --admin-port PORT (separate ops listener; 0 = ephemeral)\n               --drift-poll-ms MS (0 disables the drift monitor)\n               --no-rolling (disable rolling-window SLO aggregation)";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = match parse_flags(rest) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "first-stage" => {
            validate_flags(&flags, FIRST_STAGE_FLAGS).and_then(|()| cmd_first_stage(&flags))
        }
        "total" => validate_flags(&flags, TOTAL_FLAGS).and_then(|()| cmd_total(&flags)),
        "flow" => validate_flags(&flags, FLOW_FLAGS).and_then(|()| cmd_flow(&flags)),
        "simulate" => validate_flags(&flags, SIMULATE_FLAGS).and_then(|()| cmd_simulate(&flags)),
        "report" => validate_flags(&flags, REPORT_FLAGS).and_then(|()| cmd_report(&flags)),
        "trace" => validate_flags(&flags, TRACE_FLAGS).and_then(|()| cmd_trace(&flags)),
        "pmf" => validate_flags(&flags, PMF_FLAGS).and_then(|()| cmd_pmf(&flags)),
        "serve" => validate_flags(&flags, SERVE_FLAGS).and_then(|()| cmd_serve(&flags)),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
