//! `banyan` — command-line front end to the waiting-time models and the
//! simulator, in the spirit of the design studies the formulas were
//! built for (Ultracomputer / RP3 sizing).
//!
//! ```text
//! banyan first-stage --k 2 --p 0.5 --m 1
//! banyan first-stage --k 2 --p 0.5 --geometric-mu 0.5
//! banyan total --k 2 --stages 12 --p 0.5 --m 1 [--quantiles]
//! banyan simulate --k 2 --stages 6 --p 0.5 --m 1 [--cycles N] [--q HOT] [--capacity C]
//!                 [--reps R] [--threads T] [--telemetry FILE] [--progress]
//! banyan pmf --k 2 --p 0.5 --m 1 --len 32
//! ```
//!
//! Flags are `--name value`; anything unknown is an error with a
//! "did you mean" suggestion. Simulation results go to stdout;
//! diagnostics (`--progress` heartbeats, telemetry notices) go to
//! stderr, so stdout stays machine-parseable. This binary deliberately
//! avoids external argument-parsing crates.

use banyan_repro::cli::{get, get_prob, parse_flags, service_from_flags, validate_flags, Flags};
use banyan_repro::prelude::*;
use std::process::ExitCode;

/// Known flags per subcommand: parse_flags accepts any `--name value`
/// pair, so each command validates against its own set before running.
const FIRST_STAGE_FLAGS: &[&str] = &["k", "p", "q", "b", "m", "geometric-mu", "mix"];
const TOTAL_FLAGS: &[&str] = &["k", "stages", "p", "m", "quantiles"];
const SIMULATE_FLAGS: &[&str] = &[
    "k", "stages", "p", "q", "cycles", "seed", "m", "geometric-mu", "mix", "capacity", "reps",
    "threads", "telemetry", "progress",
];
const PMF_FLAGS: &[&str] = &["k", "p", "m", "len"];

fn cmd_first_stage(flags: &Flags) -> Result<(), String> {
    let k: u32 = get(flags, "k", 2)?;
    let p: f64 = get_prob(flags, "p", 0.5)?;
    let q: f64 = get_prob(flags, "q", 0.0)?;
    let b: u32 = get(flags, "b", 1)?;
    match service_from_flags(flags)? {
        ServiceDist::Geometric(mu) => {
            let fs = geometric_queue(k, p, mu).map_err(|e| e.to_string())?;
            print_first_stage(&fs);
        }
        ServiceDist::Mixed(sizes) => {
            let fs = mixed_queue(k, p, sizes).map_err(|e| e.to_string())?;
            print_first_stage(&fs);
        }
        ServiceDist::Constant(m) => {
            if q > 0.0 {
                if m != 1 {
                    return Err("--q currently supports m = 1 only".into());
                }
                let fs = nonuniform_queue(k, p, q, b).map_err(|e| e.to_string())?;
                print_first_stage(&fs);
            } else if b > 1 {
                if m != 1 {
                    return Err("--b currently supports m = 1 only".into());
                }
                let fs = bulk_queue(k, p, b).map_err(|e| e.to_string())?;
                print_first_stage(&fs);
            } else {
                let fs = uniform_queue(k, p, m).map_err(|e| e.to_string())?;
                print_first_stage(&fs);
            }
        }
    }
    Ok(())
}

fn print_first_stage<R: Pgf, U: Pgf>(fs: &FirstStage<R, U>) {
    println!("traffic intensity rho = {:.6}", fs.rho());
    println!("E(w)   = {:.6}", fs.mean_wait());
    println!("Var(w) = {:.6}", fs.var_wait());
    println!("E(delay)   = {:.6}", fs.mean_delay());
    println!("Var(delay) = {:.6}", fs.var_delay());
    let (es, vs) = fs.unfinished_work_moments();
    println!("E(backlog) = {:.6}, Var(backlog) = {:.6}", es, vs);
    println!("P(idle)    = {:.6}", fs.idle_probability());
    if let Some(r) = fs.tail_decay_rate() {
        println!("tail: P(w=j) ~ C * {r:.6}^j");
    }
    for &q in &[0.5, 0.9, 0.99, 0.999] {
        println!("wait p{:<4} = {}", (q * 1000.0) as u32, fs.wait_quantile(q));
    }
}

fn cmd_total(flags: &Flags) -> Result<(), String> {
    let k: u32 = get(flags, "k", 2)?;
    let n: u32 = get(flags, "stages", 6)?;
    let p: f64 = get_prob(flags, "p", 0.5)?;
    let m: u32 = get(flags, "m", 1)?;
    if (m as f64) * p >= 1.0 {
        return Err(format!("unstable load: rho = {}", m as f64 * p));
    }
    let t = TotalWaiting::new(k, n, p, m);
    println!("stages = {n}, rho = {:.4}", t.rho());
    println!("E(total waiting)   = {:.6}", t.mean_total());
    println!("Var(total waiting) = {:.6}  (independence: {:.6})",
        t.var_total(), t.var_total_independent());
    println!("total service (cut-through) = {}", t.total_service());
    println!("E(total delay)     = {:.6}", t.mean_total_delay());
    let (a, b) = t.cov_params();
    println!("covariance model: a = {a:.4}, b = {b:.4}");
    if let Some(g) = t.gamma() {
        println!("gamma approx: shape = {:.4}, scale = {:.4}", g.shape(), g.scale());
        if flags.contains_key("quantiles") {
            for &q in &[0.5, 0.9, 0.99, 0.999] {
                println!(
                    "delay p{:<4} = {:.2}",
                    (q * 1000.0) as u32,
                    t.delay_quantile(q)
                );
            }
        }
    }
    Ok(())
}

fn cmd_simulate(flags: &Flags) -> Result<(), String> {
    let k: u32 = get(flags, "k", 2)?;
    let n: u32 = get(flags, "stages", 6)?;
    let p: f64 = get_prob(flags, "p", 0.5)?;
    let q: f64 = get_prob(flags, "q", 0.0)?;
    let cycles: u64 = get(flags, "cycles", 20_000u64)?;
    let seed: u64 = get(flags, "seed", 1u64)?;
    let reps: u32 = get(flags, "reps", 1u32)?;
    if reps == 0 {
        return Err("--reps must be at least 1".into());
    }
    let threads: usize = get(flags, "threads", 1usize)?;
    let service = service_from_flags(flags)?;
    let service_desc = format!("{service:?}");
    let mut cfg = NetworkConfig::new(k, n, Workload { p, q, service });
    cfg.measure_cycles = cycles;
    cfg.warmup_cycles = (cycles / 10).max(500);
    cfg.seed = seed;
    if let Some(cap) = flags.get("capacity") {
        let cap: usize = cap
            .parse()
            .map_err(|_| "invalid --capacity".to_string())?;
        if cap == 0 {
            return Err("--capacity must be at least 1 message".into());
        }
        cfg.buffer_capacity = Some(cap);
    }
    let telemetry_path = flags.get("telemetry").cloned();
    let mut tcfg = if telemetry_path.is_some() {
        TelemetryConfig::on()
    } else {
        TelemetryConfig::off()
    };
    if flags.contains_key("progress") {
        tcfg = tcfg.with_progress();
    }
    let tel = Telemetry::new(tcfg);
    let started = std::time::Instant::now();
    let stats = run_network_replicated_instrumented(&cfg, reps, threads, &tel);
    let run_secs = started.elapsed().as_secs_f64();
    // Telemetry never touches the RNG or the dynamics, so everything
    // printed below (stdout) is byte-identical with or without
    // --progress/--telemetry — only stderr gains output.
    tel.heartbeat_final();
    println!("delivered {} messages over {} cycles", stats.delivered, stats.cycles);
    if stats.rejected_total > 0 {
        let offered = stats.injected_total + stats.rejected_total;
        println!(
            "rejected {} of {} offered ({:.2}%)",
            stats.rejected_total,
            offered,
            100.0 * stats.rejected_total as f64 / offered as f64
        );
    }
    for (i, w) in stats.stage_waits.iter().enumerate() {
        println!(
            "stage {:>2}: E(w) = {:.4}  Var(w) = {:.4}",
            i + 1,
            w.mean(),
            w.variance()
        );
    }
    println!(
        "total waiting: mean = {:.4}, var = {:.4}, p99 = {}",
        stats.total_wait.mean(),
        stats.total_wait.variance(),
        stats.total_hist.quantile(0.99).unwrap_or(0)
    );
    if let Some(path) = telemetry_path {
        let mut m = Manifest::new("banyan-simulate");
        m.config("k", k)
            .config("stages", n)
            .config("p", p)
            .config("q", q)
            .config("cycles", cycles)
            .config("service", &service_desc)
            .seed("base", seed)
            .reps(reps)
            .threads(threads)
            .phase("run", run_secs);
        if let Some(cap) = cfg.buffer_capacity {
            m.config("capacity", cap);
        }
        let written = m
            .write(&path, Some(&tel))
            .map_err(|e| format!("cannot write --telemetry {path}: {e}"))?;
        eprintln!("telemetry manifest written to {}", written.display());
    }
    Ok(())
}

fn cmd_pmf(flags: &Flags) -> Result<(), String> {
    let k: u32 = get(flags, "k", 2)?;
    let p: f64 = get_prob(flags, "p", 0.5)?;
    let m: u32 = get(flags, "m", 1)?;
    let len: usize = get(flags, "len", 32usize)?;
    let fs = uniform_queue(k, p, m).map_err(|e| e.to_string())?;
    let pmf = fs.pmf(len);
    println!("{:>5}  {:>12}  {:>12}", "w", "P(w)", "P(W<=w)");
    let mut acc = 0.0;
    for (v, &pr) in pmf.iter().enumerate() {
        acc += pr;
        println!("{v:>5}  {pr:>12.8}  {acc:>12.8}");
    }
    Ok(())
}

const USAGE: &str = "usage: banyan <command> [--flag value ...]\n\
commands:\n  first-stage  exact Theorem-1 analysis of one output port\n  total        total waiting/delay through an n-stage network\n  simulate     run the clocked network simulator\n  pmf          print the exact first-stage waiting distribution\n\
common flags: --k --p --m --stages --q --b --geometric-mu --mix 4:0.5,8:0.5\n              --cycles --seed --capacity --quantiles --len\n\
simulate-only: --reps N --threads T (replicated run, merged stats)\n               --telemetry FILE (write a JSON run manifest)\n               --progress (heartbeat on stderr; stdout unchanged)";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = match parse_flags(rest) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "first-stage" => {
            validate_flags(&flags, FIRST_STAGE_FLAGS).and_then(|()| cmd_first_stage(&flags))
        }
        "total" => validate_flags(&flags, TOTAL_FLAGS).and_then(|()| cmd_total(&flags)),
        "simulate" => validate_flags(&flags, SIMULATE_FLAGS).and_then(|()| cmd_simulate(&flags)),
        "pmf" => validate_flags(&flags, PMF_FLAGS).and_then(|()| cmd_pmf(&flags)),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
