//! Integration tests for the `banyan serve` capacity daemon: wire
//! protocol, cache behaviour, bit-identity of served analytic answers,
//! and the drift-gated simulation fallback.

use banyan_repro::core::total_delay::TotalWaiting;
use banyan_repro::obs::json::JsonValue;
use banyan_repro::serve::flow::{flow_body, FlowQuery};
use banyan_repro::serve::http::Client;
use banyan_repro::serve::{ServeConfig, ServerHandle};
use std::io::{Read, Write};
use std::net::TcpStream;

/// A daemon on an ephemeral port with small simulation budgets.
fn spawn(mutate: impl FnOnce(&mut ServeConfig)) -> ServerHandle {
    let mut cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        probe_cycles: 800,
        probe_reps: 2,
        sim_cycles: 1_500,
        sim_reps: 2,
        // Keep idle keep-alive connections from pinning workers during
        // shutdown joins.
        read_timeout_ms: 500,
        ..ServeConfig::default()
    };
    mutate(&mut cfg);
    ServerHandle::spawn(cfg).expect("spawn daemon")
}

/// Sends raw bytes on a fresh connection and returns everything the
/// daemon writes back before closing.
fn raw_exchange(addr: &str, bytes: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(bytes).expect("write");
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("read");
    out
}

fn get_f64(doc: &JsonValue, section: &str, field: &str) -> f64 {
    doc.get(section)
        .and_then(|s| s.get(field))
        .and_then(JsonValue::as_f64)
        .unwrap_or_else(|| panic!("missing {section}.{field}"))
}

#[test]
fn malformed_request_lines_get_400_and_close() {
    let handle = spawn(|_| {});
    let addr = handle.addr().to_string();
    for raw in [
        "GET\r\n\r\n",                           // one token
        "GET /healthz\r\n\r\n",                  // missing version
        "GET /healthz HTTP/2.0\r\n\r\n",         // unsupported version
        "GET /healthz HTTP/1.1 extra\r\n\r\n",   // four tokens
        "POST /query HTTP/1.1\r\ncontent-length: nope\r\n\r\n", // bad length
    ] {
        let out = raw_exchange(&addr, raw.as_bytes());
        assert!(out.starts_with("HTTP/1.1 400 "), "{raw:?} -> {out}");
        assert!(out.contains("connection: close"), "{out}");
    }
    handle.shutdown().unwrap();
}

#[test]
fn unknown_paths_and_wrong_methods_are_rejected() {
    let handle = spawn(|_| {});
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    let resp = client.request("GET", "/nope", None).unwrap();
    assert_eq!(resp.status, 404, "{}", resp.body);
    // Known path, wrong method: 405, and the connection stays usable.
    let resp = client.request("POST", "/healthz", Some("{}")).unwrap();
    assert_eq!(resp.status, 405, "{}", resp.body);
    let resp = client.request("GET", "/healthz", None).unwrap();
    assert_eq!(resp.status, 200);
    handle.shutdown().unwrap();
}

#[test]
fn oversized_bodies_get_413_before_read() {
    let handle = spawn(|cfg| cfg.max_body_bytes = 256);
    let addr = handle.addr().to_string();
    // Declare a huge body but never send it: the daemon must answer
    // 413 from the header alone.
    let raw = "POST /query HTTP/1.1\r\ncontent-length: 1048576\r\n\r\n";
    let out = raw_exchange(&addr, raw.as_bytes());
    assert!(out.starts_with("HTTP/1.1 413 "), "{out}");
    assert!(out.contains("256"), "limit should be named: {out}");
    handle.shutdown().unwrap();
}

#[test]
fn keep_alive_connection_serves_miss_then_hits() {
    let handle = spawn(|_| {});
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    let body = r#"{"k": 2, "stages": 6, "p": 0.5, "mode": "analytic"}"#;
    let first = client.request("POST", "/query", Some(body)).unwrap();
    assert_eq!(first.status, 200, "{}", first.body);
    assert_eq!(first.header("x-banyan-cache"), Some("miss"));
    assert_eq!(first.header("x-banyan-source"), Some("analytic"));
    // Same connection, same canonical query in a different spelling:
    // query-string form, reordered fields, underscore alias.
    let second = client
        .request("GET", "/query?p=0.5&stages=6&k=2&mode=analytic", None)
        .unwrap();
    assert_eq!(second.status, 200);
    assert_eq!(second.header("x-banyan-cache"), Some("hit"));
    assert_eq!(second.body, first.body, "cache must return the identical body");
    let third = client.request("POST", "/query", Some(body)).unwrap();
    assert_eq!(third.header("x-banyan-cache"), Some("hit"));
    // All three rode one TCP connection.
    let conns = handle
        .state()
        .telemetry()
        .registry()
        .counter_value("serve.http.connections_total")
        .unwrap_or(0);
    assert_eq!(conns, 1, "keep-alive must reuse the connection");
    handle.shutdown().unwrap();
}

#[test]
fn invalid_queries_get_clean_errors() {
    let handle = spawn(|_| {});
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    // The CLI's hardened validation speaks through the daemon.
    for (body, needle) in [
        (r#"{"k": 2, "p": 1.5}"#, "must be a probability"),
        (r#"{"p": 0.3, "geometric_mu": 1.5}"#, "--geometric-mu must be in (0, 1]"),
        (r#"{"p": 0.1, "mix": "4:0.3,8:0.3"}"#, "must sum to 1"),
        (r#"{"p": 0.5, "m": 4}"#, "not < 1"),
        (r#"{"stage": 3}"#, "did you mean --stages?"),
        (r#"{"p": 0.5, "p": 0.6}"#, "duplicate"),
        ("not json", "JSON body"),
    ] {
        let resp = client.request("POST", "/query", Some(body)).unwrap();
        assert_eq!(resp.status, 400, "{body} -> {}", resp.body);
        assert!(resp.body.contains(needle), "{body} -> {}", resp.body);
    }
    handle.shutdown().unwrap();
}

#[test]
fn concurrent_clients_all_get_consistent_answers() {
    let handle = spawn(|cfg| cfg.workers = 4);
    let addr = handle.addr().to_string();
    let bodies: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let addr = addr.clone();
                scope.spawn(move || {
                    let mut client = Client::connect(&addr).unwrap();
                    let mut last = String::new();
                    for _ in 0..20 {
                        let resp = client
                            .request(
                                "POST",
                                "/query",
                                Some(r#"{"k": 4, "stages": 3, "p": 0.25, "mode": "analytic"}"#),
                            )
                            .unwrap();
                        assert_eq!(resp.status, 200, "{}", resp.body);
                        last = resp.body;
                    }
                    last
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for b in &bodies[1..] {
        assert_eq!(b, &bodies[0], "all clients must see one canonical answer");
    }
    let reg = handle.state().telemetry().registry();
    let requests = reg.counter_value("serve.http.requests_total").unwrap();
    let responses = reg.counter_value("serve.http.responses_total").unwrap();
    let parse_errors = reg.counter_value("serve.http.parse_errors_total").unwrap_or(0);
    assert_eq!(responses, requests + parse_errors, "response ledger");
    let validated = reg.counter_value("serve.query.validated_total").unwrap();
    let hits = reg.counter_value("serve.cache.hits").unwrap();
    let misses = reg.counter_value("serve.cache.misses").unwrap();
    assert_eq!(validated, hits + misses, "cache ledger");
    handle.shutdown().unwrap();
}

#[test]
fn served_analytic_answer_is_bit_identical_to_the_library() {
    let handle = spawn(|_| {});
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    let resp = client
        .request(
            "POST",
            "/query",
            Some(r#"{"k": 2, "stages": 6, "p": 0.5, "m": 1, "mode": "analytic"}"#),
        )
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let doc = JsonValue::parse(&resp.body).expect("answer is valid JSON");
    // fmt_f64 renders shortest-round-trip and JsonValue reparses with
    // the correctly rounded f64 parser, so the served values must match
    // a direct library evaluation bit for bit.
    let t = TotalWaiting::new(2, 6, 0.5, 1);
    let checks = [
        ("wait", "mean", t.mean_total()),
        ("wait", "var", t.var_total()),
        ("wait", "p99", t.gamma().map(|g| g.quantile(0.99)).unwrap()),
        ("wait", "p999", t.gamma().map(|g| g.quantile(0.999)).unwrap()),
        ("delay", "mean", t.mean_total_delay()),
        ("delay", "p99", t.delay_quantile(0.99)),
    ];
    for (section, field, expect) in checks {
        let got = get_f64(&doc, section, field);
        assert_eq!(
            got.to_bits(),
            expect.to_bits(),
            "{section}.{field}: served {got} != library {expect}"
        );
    }
    handle.shutdown().unwrap();
}

#[test]
fn auto_mode_serves_analytic_when_drift_is_within_threshold() {
    // A generous KS threshold: the probe passes and the analytic answer
    // is served, stamped with the measured drift.
    let handle = spawn(|cfg| cfg.drift_threshold = 0.9);
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    let resp = client
        .request("POST", "/query", Some(r#"{"k": 2, "stages": 3, "p": 0.5, "mode": "auto"}"#))
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert_eq!(resp.header("x-banyan-source"), Some("analytic"));
    let doc = JsonValue::parse(&resp.body).unwrap();
    let ks = doc.get("drift_ks").and_then(JsonValue::as_f64).expect("drift_ks stamped");
    assert!(ks > 0.0 && ks <= 0.9, "ks = {ks}");
    assert_eq!(doc.get("source").and_then(JsonValue::as_str), Some("analytic"));
    handle.shutdown().unwrap();
}

#[test]
fn auto_mode_falls_back_to_simulation_when_drift_exceeds_threshold() {
    // An impossible KS threshold: any nonzero drift trips the gate and
    // the replicated simulator answers instead.
    let handle = spawn(|cfg| cfg.drift_threshold = 0.0);
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    let resp = client
        .request("POST", "/query", Some(r#"{"k": 2, "stages": 3, "p": 0.5, "mode": "auto"}"#))
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert_eq!(resp.header("x-banyan-source"), Some("simulation"));
    let doc = JsonValue::parse(&resp.body).unwrap();
    assert_eq!(doc.get("source").and_then(JsonValue::as_str), Some("simulation"));
    let ks = doc.get("drift_ks").and_then(JsonValue::as_f64).expect("drift_ks stamped");
    assert!(ks > 0.0, "fallback must record the measured drift, got {ks}");
    // The sim section records its provenance.
    let delivered = doc
        .get("sim")
        .and_then(|s| s.get("delivered"))
        .and_then(JsonValue::as_u64)
        .expect("sim.delivered");
    assert!(delivered > 0);
    let fallbacks = handle
        .state()
        .telemetry()
        .registry()
        .counter_value("serve.answer.sim_fallback_total")
        .unwrap_or(0);
    assert_eq!(fallbacks, 1, "gate must have tripped exactly once");
    handle.shutdown().unwrap();
}

#[test]
fn idle_keep_alive_connections_do_not_starve_new_ones() {
    // Regression: with `workers: 0` the pool used to size itself to
    // `available_parallelism`, i.e. a single worker on one-CPU hosts —
    // an idle keep-alive connection then pinned the daemon and every
    // new connection hung until the read timeout fired. The default
    // now floors the pool at 4 workers.
    let handle = spawn(|cfg| {
        cfg.workers = 0; // default sizing
        cfg.read_timeout_ms = 5_000; // starvation would cost seconds
    });
    let addr = handle.addr().to_string();
    // Three connections left idle mid-keep-alive, each pinning a worker.
    let mut idle = Vec::new();
    for _ in 0..3 {
        let mut c = Client::connect(&addr).unwrap();
        assert_eq!(c.request("GET", "/healthz", None).unwrap().status, 200);
        idle.push(c);
    }
    // A fresh connection must still be served promptly.
    let started = std::time::Instant::now();
    let mut fresh = Client::connect(&addr).unwrap();
    let resp = fresh.request("GET", "/healthz", None).unwrap();
    assert_eq!(resp.status, 200);
    assert!(
        started.elapsed() < std::time::Duration::from_secs(2),
        "new connection starved for {:?}",
        started.elapsed()
    );
    drop(idle);
    drop(fresh);
    handle.shutdown().unwrap();
}

/// Parses exposition sample lines into `identity -> value`, where the
/// identity is the full `name{labels}` prefix of the line.
fn parse_samples(body: &str) -> std::collections::BTreeMap<String, f64> {
    body.lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| {
            let (id, v) = l.rsplit_once(' ').unwrap_or_else(|| panic!("bad sample line {l:?}"));
            (
                id.to_string(),
                v.parse::<f64>().unwrap_or_else(|_| panic!("bad sample value {l:?}")),
            )
        })
        .collect()
}

#[test]
fn metrics_endpoint_renders_prometheus_exposition() {
    let handle = spawn(|cfg| cfg.drift_poll_ms = 0);
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    let body = r#"{"k": 2, "stages": 6, "p": 0.5, "mode": "analytic"}"#;
    assert_eq!(client.request("POST", "/query", Some(body)).unwrap().status, 200);
    assert_eq!(client.request("POST", "/query", Some(body)).unwrap().status, 200);
    assert_eq!(client.request("GET", "/healthz", None).unwrap().status, 200);
    let resp = client.request("GET", "/metrics", None).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("content-type"), Some("text/plain; version=0.0.4"));
    for header in [
        "# TYPE serve_http_requests_total counter",
        "# TYPE serve_uptime_seconds gauge",
        "# TYPE serve_latency_us_query histogram",
        "# HELP serve_http_requests_total serve.http.requests_total",
    ] {
        assert!(resp.body.contains(header), "missing {header:?} in scrape");
    }
    let samples = parse_samples(&resp.body);
    assert!(samples["serve_http_requests_total"] >= 3.0);
    assert_eq!(samples["serve_cache_misses"], 1.0);
    assert_eq!(samples["serve_cache_hits"], 1.0);
    // Histogram structure: cumulative buckets capped by +Inf == _count,
    // with the explicit overflow counter at zero for loopback latencies.
    let count = samples["serve_latency_us_query_count"];
    assert!(count >= 2.0, "{count}");
    assert_eq!(samples["serve_latency_us_query_bucket{le=\"+Inf\"}"], count);
    assert_eq!(samples["serve_latency_us_query_overflow"], 0.0);
    assert!(samples["serve_latency_us_query_sum"] > 0.0);
    // The /query observations finished before this scrape, so the
    // rolling families cover the route; the scrape itself has not
    // finished and must not count itself.
    assert!(
        samples.contains_key("serve_rolling_latency_us{route=\"query\",window=\"10s\",quantile=\"p50\"}"),
        "rolling quantile family missing"
    );
    assert!(
        samples.contains_key("serve_rolling_requests_per_sec{route=\"query\",window=\"1s\"}"),
        "rolling rate family missing"
    );
    handle.shutdown().unwrap();
}

#[test]
fn metrics_counters_are_monotone_across_scrapes() {
    let handle = spawn(|cfg| cfg.drift_poll_ms = 0);
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    let query = r#"{"k": 2, "stages": 6, "p": 0.5, "mode": "analytic"}"#;
    assert_eq!(client.request("POST", "/query", Some(query)).unwrap().status, 200);
    let first = client.request("GET", "/metrics", None).unwrap();
    assert_eq!(client.request("POST", "/query", Some(query)).unwrap().status, 200);
    assert_eq!(client.request("GET", "/healthz", None).unwrap().status, 200);
    let second = client.request("GET", "/metrics", None).unwrap();
    // Families declared `counter` may only grow between scrapes, and
    // none may disappear.
    let counter_families: Vec<&str> = first
        .body
        .lines()
        .filter_map(|l| l.strip_prefix("# TYPE "))
        .filter_map(|l| l.strip_suffix(" counter"))
        .collect();
    assert!(
        counter_families.contains(&"serve_http_requests_total"),
        "{counter_families:?}"
    );
    let (a, b) = (parse_samples(&first.body), parse_samples(&second.body));
    let mut checked = 0;
    for family in counter_families {
        for (id, &va) in a.range(family.to_string()..) {
            if !id.starts_with(family) {
                break;
            }
            let vb = *b
                .get(id)
                .unwrap_or_else(|| panic!("counter {id} vanished between scrapes"));
            assert!(vb >= va, "counter {id} went backwards: {va} -> {vb}");
            checked += 1;
        }
    }
    assert!(checked >= 5, "too few counter samples checked: {checked}");
    assert!(
        b["serve_http_requests_total"] > a["serve_http_requests_total"],
        "traffic between scrapes must show up"
    );
    handle.shutdown().unwrap();
}

#[test]
fn metrics_scrape_matches_the_golden_identity_set() {
    // A fixed request sequence against an ephemeral daemon must expose
    // exactly the committed set of families and sample identities —
    // metric renames, dropped instruments, or label changes all fail
    // here. Values vary run to run and are stripped; `# HELP`/`# TYPE`
    // lines and sample identities must match byte for byte.
    // Regenerate with: UPDATE_GOLDEN=1 cargo test --test serve golden
    let handle = spawn(|cfg| {
        cfg.drift_poll_ms = 0;
        cfg.workers = 2;
    });
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    let query = r#"{"k": 2, "stages": 6, "p": 0.5, "mode": "analytic"}"#;
    assert_eq!(client.request("POST", "/query", Some(query)).unwrap().status, 200);
    assert_eq!(client.request("POST", "/query", Some(query)).unwrap().status, 200);
    assert_eq!(client.request("GET", "/healthz", None).unwrap().status, 200);
    // First scrape is discarded so the `metrics` route itself has
    // rolling/histogram traffic in the golden scrape.
    assert_eq!(client.request("GET", "/metrics", None).unwrap().status, 200);
    let resp = client.request("GET", "/metrics", None).unwrap();
    assert_eq!(resp.status, 200);
    let identities: String = resp
        .body
        .lines()
        .map(|l| {
            if l.starts_with('#') || l.is_empty() {
                l.to_string()
            } else {
                l.rsplit_once(' ').expect("sample line").0.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
        + "\n";
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/serve_metrics_scrape.txt"
    );
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(golden_path, &identities).expect("write golden");
    } else {
        let expect = std::fs::read_to_string(golden_path)
            .expect("golden scrape file (regenerate with UPDATE_GOLDEN=1)");
        assert_eq!(
            identities, expect,
            "scrape identity set changed; if intended, regenerate with \
             UPDATE_GOLDEN=1 cargo test --test serve golden"
        );
    }
    handle.shutdown().unwrap();
}

#[test]
fn readyz_reflects_drift_health_in_both_directions() {
    // Healthy direction: a generous threshold keeps the probe inside
    // the gate, the drift tick leaves the flag clear, and /readyz says
    // ready.
    let handle = spawn(|cfg| {
        cfg.drift_threshold = 0.9;
        cfg.drift_poll_ms = 0;
    });
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    let query = r#"{"k": 2, "stages": 3, "p": 0.5, "mode": "analytic"}"#;
    assert_eq!(client.request("POST", "/query", Some(query)).unwrap().status, 200);
    banyan_repro::serve::drift_tick(handle.state().as_ref());
    let state = handle.state();
    let reg = state.telemetry().registry();
    assert!(reg.counter_value("serve.drift.probes_total").unwrap_or(0) >= 1);
    assert_eq!(reg.gauge("serve.drift.degraded").get(), 0);
    let resp = client.request("GET", "/readyz", None).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert!(resp.body.contains("\"ready\""), "{}", resp.body);
    handle.shutdown().unwrap();

    // Degraded direction: an impossible threshold trips on any nonzero
    // probe drift and /readyz flips to 503 naming the failure.
    let handle = spawn(|cfg| {
        cfg.drift_threshold = 0.0;
        cfg.drift_poll_ms = 0;
    });
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    assert_eq!(client.request("POST", "/query", Some(query)).unwrap().status, 200);
    banyan_repro::serve::drift_tick(handle.state().as_ref());
    assert_eq!(
        handle
            .state()
            .telemetry()
            .registry()
            .gauge("serve.drift.degraded")
            .get(),
        1
    );
    let resp = client.request("GET", "/readyz", None).unwrap();
    assert_eq!(resp.status, 503, "{}", resp.body);
    assert!(resp.body.contains("not-ready"), "{}", resp.body);
    assert!(resp.body.contains("drift"), "{}", resp.body);
    handle.shutdown().unwrap();
}

#[test]
fn statusz_reports_rolling_quantiles_and_cache_state() {
    let handle = spawn(|cfg| cfg.drift_poll_ms = 0);
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    let query = r#"{"k": 2, "stages": 6, "p": 0.5, "mode": "analytic"}"#;
    assert_eq!(client.request("POST", "/query", Some(query)).unwrap().status, 200);
    assert_eq!(client.request("POST", "/query", Some(query)).unwrap().status, 200);
    let resp = client.request("GET", "/statusz", None).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let doc = JsonValue::parse(&resp.body).expect("statusz JSON");
    assert_eq!(
        doc.get("schema").and_then(JsonValue::as_str),
        Some("banyan-serve/statusz/v1")
    );
    assert!(get_f64(&doc, "workers", "active") >= 1.0);
    assert_eq!(get_f64(&doc, "cache", "entries"), 1.0);
    assert_eq!(get_f64(&doc, "cache", "hits"), 1.0);
    assert_eq!(get_f64(&doc, "cache", "misses"), 1.0);
    assert_eq!(get_f64(&doc, "cache", "hit_ratio"), 0.5);
    assert_eq!(get_f64(&doc, "drift", "degraded"), 0.0);
    assert_eq!(get_f64(&doc, "drift", "hot_keys"), 1.0);
    assert!(
        doc.get("uptime_secs").and_then(JsonValue::as_f64).expect("uptime_secs") >= 0.0
    );
    // Both finished /query observations are in the 10-second window
    // with positive microsecond quantiles, p50 <= p99.
    let query_10s = doc
        .get("routes")
        .and_then(|r| r.get("query"))
        .and_then(|q| q.get("10s"))
        .expect("routes.query.10s");
    let count = query_10s.get("count").and_then(JsonValue::as_u64).unwrap();
    assert_eq!(count, 2, "{}", resp.body);
    let p50 = query_10s.get("p50_us").and_then(JsonValue::as_f64).unwrap();
    let p99 = query_10s.get("p99_us").and_then(JsonValue::as_f64).unwrap();
    assert!(p50 > 0.0 && p50 <= p99, "p50 {p50} p99 {p99}");
    handle.shutdown().unwrap();
}

#[test]
fn access_log_records_each_route_and_samples_when_asked() {
    let log_path = std::env::temp_dir().join(format!(
        "banyan_serve_test_access_{}.jsonl",
        std::process::id()
    ));
    let handle = spawn(|cfg| {
        cfg.drift_poll_ms = 0;
        cfg.access_log = Some(log_path.display().to_string());
    });
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    let query = r#"{"k": 2, "stages": 6, "p": 0.5, "mode": "analytic"}"#;
    assert_eq!(client.request("POST", "/query", Some(query)).unwrap().status, 200);
    assert_eq!(client.request("POST", "/query", Some(query)).unwrap().status, 200);
    assert_eq!(client.request("GET", "/nope", None).unwrap().status, 404);
    // Stop over HTTP so the shutdown request itself lands in the log;
    // joining the handle afterwards flushes the staged lines.
    assert_eq!(client.request("POST", "/shutdown", None).unwrap().status, 200);
    drop(client);
    handle.shutdown().unwrap();
    let text = std::fs::read_to_string(&log_path).expect("access log");
    let _ = std::fs::remove_file(&log_path);
    let lines: Vec<JsonValue> = text
        .lines()
        .map(|l| JsonValue::parse(l).unwrap_or_else(|e| panic!("bad log line {l:?}: {e}")))
        .collect();
    // query miss, query hit, 404, then the shutdown request itself.
    assert_eq!(lines.len(), 4, "{text}");
    let field = |i: usize, key: &str| {
        lines[i]
            .get(key)
            .and_then(JsonValue::as_str)
            .map(str::to_string)
            .unwrap_or_else(|| panic!("line {i} missing {key}: {text}"))
    };
    for line in &lines {
        assert_eq!(
            line.get("schema").and_then(JsonValue::as_str),
            Some("banyan-serve/access/v1")
        );
        assert!(line.get("us").and_then(JsonValue::as_u64).is_some());
        assert!(line.get("ts_ms").and_then(JsonValue::as_u64).is_some());
    }
    assert_eq!(field(0, "route"), "query");
    assert_eq!(field(0, "cache"), "miss");
    assert_eq!(field(0, "source"), "analytic");
    assert_eq!(field(1, "cache"), "hit");
    assert_eq!(field(2, "route"), "other");
    assert_eq!(lines[2].get("status").and_then(JsonValue::as_u64), Some(404));
    assert_eq!(field(3, "route"), "shutdown");

    // Sampled: a huge interval admits the first line and suppresses the
    // rest, counting what it dropped.
    let handle = spawn(|cfg| {
        cfg.drift_poll_ms = 0;
        cfg.access_log = Some(log_path.display().to_string());
        cfg.access_log_sample_ms = 600_000;
    });
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    for _ in 0..5 {
        assert_eq!(client.request("GET", "/healthz", None).unwrap().status, 200);
    }
    let state = handle.state().clone();
    drop(client);
    handle.shutdown().unwrap();
    let text = std::fs::read_to_string(&log_path).expect("sampled access log");
    let _ = std::fs::remove_file(&log_path);
    assert_eq!(text.lines().count(), 1, "sampling must keep one line: {text}");
    let reg = state.telemetry().registry();
    assert_eq!(reg.counter_value("serve.accesslog.lines_total"), Some(1));
    assert!(reg.counter_value("serve.accesslog.suppressed_total").unwrap_or(0) >= 4);
}

#[test]
fn flow_endpoint_serves_cached_byte_identical_answers() {
    let handle = spawn(|_| {});
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    let qs = "topo=mesh&rows=2&cols=2&p=0.5";
    let first = client
        .request("GET", &format!("/v1/flow?{qs}"), None)
        .unwrap();
    assert_eq!(first.status, 200, "{}", first.body);
    assert_eq!(first.header("x-banyan-cache"), Some("miss"));
    assert_eq!(first.header("x-banyan-source"), Some("flow-analytic"));
    // Same configuration as a JSON body in a different field order:
    // canonical cache key, so the second answer is the cached first.
    let body = r#"{"p": 0.50, "cols": 2, "rows": 2, "topo": "mesh"}"#;
    let second = client.request("POST", "/v1/flow", Some(body)).unwrap();
    assert_eq!(second.status, 200, "{}", second.body);
    assert_eq!(second.header("x-banyan-cache"), Some("hit"));
    assert_eq!(second.body, first.body, "cache must return the identical body");
    // The served body is byte-identical to an in-process render — the
    // same guarantee `banyan flow --json` rides on.
    let fq = FlowQuery::from_query_string(qs).unwrap();
    assert_eq!(first.body, flow_body(&fq).unwrap());
    let doc = JsonValue::parse(&first.body).expect("flow answer is valid JSON");
    assert_eq!(
        doc.get("schema").and_then(JsonValue::as_str),
        Some("banyan-serve/flow/v1")
    );
    assert_eq!(doc.get("flows").and_then(JsonValue::as_u64), Some(12));
    let per_flow = doc.get("per_flow").and_then(JsonValue::as_array).unwrap();
    assert_eq!(per_flow.len(), 12);
    handle.shutdown().unwrap();
}

#[test]
fn invalid_flow_queries_get_clean_errors() {
    let handle = spawn(|_| {});
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    for (body, status, needle) in [
        // Validation errors are 400s with the CLI's diagnostics.
        (r#"{"topo": "torus"}"#, 400, "--topo"),
        (r#"{"topo": "omega", "rows": 2}"#, 400, "does not apply"),
        (r#"{"topo": "omega", "k": 2, "stages": 40}"#, 400, "terminals"),
        (r#"{"topo": "mesh", "stage": 3}"#, 400, "did you mean --stages?"),
        // A structurally valid but unstable load is the engine speaking:
        // 422, same split as /query.
        (r#"{"topo": "mesh", "rows": 2, "cols": 2, "p": 1.0}"#, 422, "overloaded"),
    ] {
        let resp = client.request("POST", "/v1/flow", Some(body)).unwrap();
        assert_eq!(resp.status, status, "{body} -> {}", resp.body);
        assert!(resp.body.contains(needle), "{body} -> {}", resp.body);
    }
    // Known path, wrong method.
    let resp = client.request("PUT", "/v1/flow", Some("{}")).unwrap();
    assert_eq!(resp.status, 405, "{}", resp.body);
    handle.shutdown().unwrap();
}

#[test]
fn batch_endpoint_answers_each_element_through_the_cache() {
    let handle = spawn(|_| {});
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    // Two identical capacity queries (second must be a cache hit), one
    // bad element (reported in place, not fatal), one flow query.
    let body = r#"[
        {"k": 2, "stages": 6, "p": 0.5, "mode": "analytic"},
        {"stages": 6, "k": 2, "mode": "analytic", "p": 0.50},
        {"k": 1},
        {"topo": "mesh", "rows": 2, "cols": 2, "p": 0.5}
    ]"#;
    let resp = client.request("POST", "/v1/batch", Some(body)).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let doc = JsonValue::parse(&resp.body).expect("batch answer is valid JSON");
    assert_eq!(
        doc.get("schema").and_then(JsonValue::as_str),
        Some("banyan-serve/batch/v1")
    );
    assert_eq!(doc.get("count").and_then(JsonValue::as_u64), Some(4));
    let results = doc.get("results").and_then(JsonValue::as_array).unwrap();
    assert_eq!(results.len(), 4);
    // Element answers are the same canonical bodies the scalar routes
    // serve (modulo the trailing newline trimmed for embedding).
    assert_eq!(
        results[0].get("schema").and_then(JsonValue::as_str),
        Some("banyan-serve/answer/v1")
    );
    assert_eq!(results[1], results[0], "identical queries share one answer");
    assert!(
        results[2]
            .get("error")
            .and_then(JsonValue::as_str)
            .is_some_and(|e| e.contains("--k")),
        "bad element must carry its error: {}",
        resp.body
    );
    assert_eq!(
        results[3].get("schema").and_then(JsonValue::as_str),
        Some("banyan-serve/flow/v1")
    );
    let reg = handle.state().telemetry().registry();
    assert_eq!(reg.counter_value("serve.batch.requests_total"), Some(1));
    assert_eq!(reg.counter_value("serve.batch.element_errors_total"), Some(1));
    // The shared-cache ledger: query + flow validated traffic balances
    // hits + misses exactly.
    let validated = reg.counter_value("serve.query.validated_total").unwrap_or(0)
        + reg.counter_value("serve.flow.validated_total").unwrap_or(0);
    let hits = reg.counter_value("serve.cache.hits").unwrap_or(0);
    let misses = reg.counter_value("serve.cache.misses").unwrap_or(0);
    assert_eq!(validated, hits + misses, "cache ledger");
    assert_eq!(hits, 1, "the duplicate query is the one hit");
    handle.shutdown().unwrap();
}

#[test]
fn malformed_batches_are_rejected_whole() {
    let handle = spawn(|_| {});
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    for (body, needle) in [
        (r#"{"k": 2}"#.to_string(), "array"),
        ("[]".to_string(), "empty"),
        ("not json".to_string(), "JSON"),
        // One element past the cap.
        (format!("[{}]", vec![r#"{"k": 2}"#; 257].join(",")), "256"),
    ] {
        let resp = client.request("POST", "/v1/batch", Some(&body)).unwrap();
        assert_eq!(resp.status, 400, "{} -> {}", &body[..body.len().min(40)], resp.body);
        assert!(resp.body.contains(needle), "{}", resp.body);
    }
    let resp = client.request("GET", "/v1/batch", None).unwrap();
    assert_eq!(resp.status, 405, "{}", resp.body);
    handle.shutdown().unwrap();
}

#[test]
fn shutdown_endpoint_stops_the_daemon() {
    let handle = spawn(|_| {});
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    let resp = client.request("POST", "/shutdown", None).unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.body.contains("shutting-down"), "{}", resp.body);
    drop(client);
    handle.shutdown().unwrap();
    // The port is free again: a fresh connect must fail or be refused
    // service rather than hang. (Connect may transiently succeed while
    // the OS drains the backlog; reading must then yield EOF.)
    if let Ok(mut s) = TcpStream::connect(&addr) {
        s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").ok();
        let mut buf = String::new();
        let n = s.read_to_string(&mut buf).unwrap_or(0);
        assert_eq!(n, 0, "daemon answered after shutdown: {buf}");
    }
}
