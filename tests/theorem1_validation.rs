//! Integration: the exact first-stage analysis (banyan-core, Theorem 1)
//! against the single-queue Lindley simulator (banyan-sim), across every
//! §III traffic/service class.

use banyan_core::models::{
    bulk_queue, geometric_queue, mixed_queue, nonuniform_queue, uniform_queue,
};
use banyan_sim::queue::{ArrivalDist, QueueConfig};
use banyan_sim::runner::run_queue_replicated;
use banyan_sim::traffic::ServiceDist;
use banyan_stats::distance::total_variation;

/// Replications sharded across threads via `run_queue_replicated` — the
/// same total measured-cycle budget as the old single `run_queue` call,
/// split four ways (bit-identical for any thread count, so this suite's
/// tolerances are as reproducible as before).
fn sim(arrivals: ArrivalDist, service: ServiceDist, cycles: u64) -> banyan_sim::QueueStats {
    const REPS: u32 = 4;
    run_queue_replicated(
        &QueueConfig {
            warmup_cycles: 20_000,
            measure_cycles: cycles / REPS as u64,
            seed: 0xD15C0,
            arrivals,
            service,
        },
        REPS,
        REPS as usize,
    )
}

/// Mean and variance agree within a few standard errors plus a small
/// relative slack.
fn assert_moments(stats: &banyan_sim::QueueStats, mean: f64, var: f64, label: &str) {
    let se = stats.wait.std_err();
    let tol_mean = (4.0 * se + 0.01 * mean.abs()).max(0.01);
    assert!(
        (stats.wait.mean() - mean).abs() < tol_mean,
        "{label}: sim mean {} vs exact {mean}",
        stats.wait.mean()
    );
    let tol_var = (0.05 * var.abs()).max(0.02);
    assert!(
        (stats.wait.variance() - var).abs() < tol_var,
        "{label}: sim var {} vs exact {var}",
        stats.wait.variance()
    );
}

#[test]
fn uniform_single_arrivals_all_loads() {
    for &(k, p) in &[(2u32, 0.2), (2, 0.5), (2, 0.8), (4, 0.5), (8, 0.5)] {
        let q = uniform_queue(k, p, 1).unwrap();
        let stats = sim(
            ArrivalDist::UniformSwitch { k, s: k, p },
            ServiceDist::Constant(1),
            600_000,
        );
        assert_moments(&stats, q.mean_wait(), q.var_wait(), &format!("k={k},p={p}"));
    }
}

#[test]
fn constant_message_sizes() {
    for &(p, m) in &[(0.25, 2u32), (0.125, 4), (0.0625, 8)] {
        let q = uniform_queue(2, p, m).unwrap();
        let stats = sim(
            ArrivalDist::UniformSwitch { k: 2, s: 2, p },
            ServiceDist::Constant(m),
            600_000,
        );
        assert_moments(&stats, q.mean_wait(), q.var_wait(), &format!("m={m}"));
    }
}

#[test]
fn bulk_arrivals() {
    for &(p, b) in &[(0.2, 2u32), (0.1, 4)] {
        let q = bulk_queue(2, p, b).unwrap();
        let stats = sim(
            ArrivalDist::BulkSwitch { k: 2, s: 2, p, b },
            ServiceDist::Constant(1),
            600_000,
        );
        assert_moments(&stats, q.mean_wait(), q.var_wait(), &format!("b={b}"));
    }
}

#[test]
fn nonuniform_favorite_output() {
    for &(p, qf) in &[(0.5, 0.1), (0.5, 0.3), (0.8, 0.5)] {
        let q = nonuniform_queue(2, p, qf, 1).unwrap();
        let stats = sim(
            ArrivalDist::Nonuniform { k: 2, p, q: qf, b: 1 },
            ServiceDist::Constant(1),
            600_000,
        );
        assert_moments(&stats, q.mean_wait(), q.var_wait(), &format!("q={qf}"));
    }
}

#[test]
fn geometric_service() {
    for &(p, mu) in &[(0.3, 0.75), (0.2, 0.5)] {
        let q = geometric_queue(2, p, mu).unwrap();
        let stats = sim(
            ArrivalDist::UniformSwitch { k: 2, s: 2, p },
            ServiceDist::Geometric(mu),
            600_000,
        );
        assert_moments(&stats, q.mean_wait(), q.var_wait(), &format!("mu={mu}"));
    }
}

#[test]
fn mixed_sizes() {
    let sizes = vec![(4u32, 0.5), (8u32, 0.5)];
    let q = mixed_queue(2, 0.05, sizes.clone()).unwrap();
    let stats = sim(
        ArrivalDist::UniformSwitch { k: 2, s: 2, p: 0.05 },
        ServiceDist::Mixed(sizes),
        800_000,
    );
    assert_moments(&stats, q.mean_wait(), q.var_wait(), "mixed 4/8");
}

#[test]
fn full_pmf_matches_simulated_histogram() {
    // Beyond moments: the entire FFT-inverted distribution matches the
    // simulated one in total variation.
    let q = uniform_queue(2, 0.5, 1).unwrap();
    let stats = sim(
        ArrivalDist::UniformSwitch { k: 2, s: 2, p: 0.5 },
        ServiceDist::Constant(1),
        800_000,
    );
    let pmf = q.pmf(128);
    let tv = total_variation(&stats.hist, |v| {
        pmf.get(v as usize).copied().unwrap_or(0.0)
    });
    assert!(tv < 0.01, "TV distance = {tv}");
}

#[test]
fn utilization_equals_rho() {
    let q = uniform_queue(2, 0.6, 1).unwrap();
    let stats = sim(
        ArrivalDist::UniformSwitch { k: 2, s: 2, p: 0.6 },
        ServiceDist::Constant(1),
        400_000,
    );
    assert!((stats.utilization - q.rho()).abs() < 0.01);
}

#[test]
fn exact_skewness_matches_simulation() {
    // Third-order transform expansion vs the streaming third moment of
    // the Lindley simulator.
    for &(k, p) in &[(2u32, 0.5), (2, 0.7)] {
        let q = uniform_queue(k, p, 1).unwrap();
        let stats = sim(
            ArrivalDist::UniformSwitch { k, s: k, p },
            ServiceDist::Constant(1),
            2_000_000,
        );
        let exact = q.skewness_wait();
        let simmed = stats.wait.skewness();
        assert!(
            (exact - simmed).abs() < 0.05 * exact.abs().max(1.0),
            "k={k} p={p}: exact skew {exact} vs sim {simmed}"
        );
    }
}

#[test]
fn unfinished_work_moments_match_simulated_backlog() {
    // The Ψ(z) factor of Theorem 1: E[s] and Var[s] of the end-of-cycle
    // unfinished work, plus the idle probability Ψ(0).
    for &(k, p) in &[(2u32, 0.5), (4, 0.7)] {
        let q = uniform_queue(k, p, 1).unwrap();
        let stats = sim(
            ArrivalDist::UniformSwitch { k, s: k, p },
            ServiceDist::Constant(1),
            600_000,
        );
        let (es, vs) = q.unfinished_work_moments();
        assert!(
            (stats.backlog.mean() - es).abs() < 0.02 * (1.0 + es),
            "k={k} p={p}: backlog mean {} vs {es}",
            stats.backlog.mean()
        );
        assert!(
            (stats.backlog.variance() - vs).abs() < 0.05 * (1.0 + vs),
            "k={k} p={p}: backlog var {} vs {vs}",
            stats.backlog.variance()
        );
        assert!(
            (stats.idle_fraction - q.idle_probability()).abs() < 0.01,
            "k={k} p={p}: idle {} vs {}",
            stats.idle_fraction,
            q.idle_probability()
        );
    }
}

#[test]
fn unfinished_work_pmf_matches_simulated_backlog_distribution() {
    // The inverted Ψ(z) against the simulated backlog histogram, in
    // total variation — the quantity the §VI finite-buffer idea hinges on.
    let q = uniform_queue(2, 0.6, 1).unwrap();
    let stats = sim(
        ArrivalDist::UniformSwitch { k: 2, s: 2, p: 0.6 },
        ServiceDist::Constant(1),
        800_000,
    );
    let pmf = q.unfinished_work_pmf(128);
    let tv = total_variation(&stats.backlog_hist, |v| {
        pmf.get(v as usize).copied().unwrap_or(0.0)
    });
    assert!(tv < 0.01, "TV = {tv}");
    // Overflow predictor vs empirical tail at a few buffer sizes.
    for b in [2usize, 4, 8] {
        let pred = q.backlog_overflow_probability(b);
        let emp = 1.0 - stats.backlog_hist.cdf_at(b as u64 - 1);
        assert!(
            (pred - emp).abs() < 0.15 * emp.max(0.005),
            "b={b}: pred {pred} vs emp {emp}"
        );
    }
}

#[test]
fn exact_tail_decay_shows_in_simulation() {
    let q = uniform_queue(2, 0.7, 1).unwrap();
    let rate = q.tail_decay_rate().unwrap();
    let stats = sim(
        ArrivalDist::UniformSwitch { k: 2, s: 2, p: 0.7 },
        ServiceDist::Constant(1),
        2_000_000,
    );
    // Empirical log-slope of the histogram between quantile 0.9 and
    // 0.9999 (the 0.999 quantile sits on a bin boundary here, so the
    // window it spans depends on the pseudo-random stream).
    let lo = stats.hist.quantile(0.9).unwrap();
    let hi = stats.hist.quantile(0.9999).unwrap();
    assert!(hi > lo + 3, "need a visible tail: {lo}..{hi}");
    let p_lo = stats.hist.pmf_at(lo);
    let p_hi = stats.hist.pmf_at(hi);
    let emp_rate = (p_hi / p_lo).powf(1.0 / (hi - lo) as f64);
    assert!(
        (emp_rate - rate).abs() < 0.03,
        "empirical decay {emp_rate} vs analytic {rate}"
    );
}
