//! Integration: the extensions beyond the paper's published evaluation —
//! butterfly wiring, finite buffers, the design explorer — against the
//! analysis.

use banyan_core::design::{explore, factorizations, Objective};
use banyan_core::later_stages::StageConstants;
use banyan_core::models::uniform_queue;
use banyan_core::total_delay::TotalWaiting;
use banyan_sim::network::{run_network, NetworkConfig, Routing};
use banyan_sim::traffic::Workload;

fn cfg(k: u32, n: u32, p: f64, m: u32, cycles: u64) -> NetworkConfig {
    let mut c = NetworkConfig::new(k, n, Workload::uniform(p, m));
    c.warmup_cycles = cycles / 10;
    c.measure_cycles = cycles;
    c.seed = 0xE57;
    c
}

#[test]
fn butterfly_stage1_matches_exact_analysis() {
    let mut c = cfg(2, 6, 0.5, 1, 60_000);
    c.routing = Routing::Butterfly;
    let stats = run_network(c);
    let q = uniform_queue(2, 0.5, 1).unwrap();
    assert!((stats.stage_waits[0].mean() - q.mean_wait()).abs() < 0.01);
    assert!((stats.stage_waits[0].variance() - q.var_wait()).abs() < 0.02);
}

#[test]
fn butterfly_total_matches_section_v_prediction() {
    let mut c = cfg(2, 9, 0.5, 1, 60_000);
    c.routing = Routing::Butterfly;
    let stats = run_network(c);
    let model = TotalWaiting::new(2, 9, 0.5, 1);
    let sim = stats.total_wait.mean();
    let pred = model.mean_total();
    assert!((sim - pred).abs() < 0.05 * pred, "sim {sim} vs pred {pred}");
}

#[test]
fn finite_buffers_converge_to_infinite_model() {
    // Increasing capacity converges to the §V prediction at moderate
    // load (the paper's justification for the infinite-buffer
    // idealization).
    let model = TotalWaiting::new(2, 5, 0.5, 1);
    let mut errs = Vec::new();
    for cap in [2usize, 4, 16] {
        let mut c = cfg(2, 5, 0.5, 1, 40_000);
        c.buffer_capacity = Some(cap);
        let stats = run_network(c);
        errs.push((stats.total_wait.mean() - model.mean_total()).abs());
    }
    assert!(errs[2] < errs[0], "convergence: {errs:?}");
    assert!(errs[2] < 0.05, "capacity 16 should match infinite: {errs:?}");
}

#[test]
fn finite_buffers_bound_queue_population() {
    // With capacity c, no more than c messages can sit in any queue, so
    // the per-stage waiting time can never exceed what c-1 predecessors
    // plus blocking can produce — check the crude bound E[w_stage1] <=
    // capacity (unit service; each queued predecessor costs >= 1 cycle
    // but blocking can stretch it, so test the histogram's support
    // indirectly via conservation instead).
    let mut c = cfg(2, 3, 0.9, 1, 20_000);
    c.buffer_capacity = Some(2);
    let stats = run_network(c);
    assert_eq!(stats.injected, stats.delivered);
    assert!(stats.rejected_total > 0);
}

#[test]
fn nonuniform_total_mean_matches_simulation() {
    use banyan_core::total_delay::nonuniform_total_mean;
    let c = StageConstants::default();
    for &q in &[0.25, 0.5] {
        let mut cfg = NetworkConfig::new(2, 8, Workload::hotspot(0.5, q));
        cfg.warmup_cycles = 5_000;
        cfg.measure_cycles = 50_000;
        cfg.seed = 0x517E;
        let stats = run_network(cfg);
        let sim = stats.total_wait.mean();
        let pred = nonuniform_total_mean(&c, 2, 8, 0.5, q);
        assert!(
            (sim - pred).abs() < 0.05 * pred,
            "q={q}: sim {sim} vs pred {pred}"
        );
    }
}

#[test]
fn multi_size_total_mean_matches_simulation() {
    use banyan_core::total_delay::multi_size_total_mean;
    use banyan_sim::traffic::ServiceDist;
    let c = StageConstants::default();
    let sizes = [(4u32, 0.5), (8u32, 0.5)];
    let p = 0.5 / 6.0;
    let mut cfg = NetworkConfig::new(
        2,
        6,
        Workload {
            p,
            q: 0.0,
            service: ServiceDist::Mixed(sizes.to_vec()),
        },
    );
    cfg.warmup_cycles = 10_000;
    cfg.measure_cycles = 150_000;
    cfg.seed = 0x517F;
    let stats = run_network(cfg);
    let sim = stats.total_wait.mean();
    let pred = multi_size_total_mean(&c, 2, 6, p, &sizes);
    assert!(
        (sim - pred).abs() < 0.06 * pred,
        "sim {sim} vs pred {pred}"
    );
}

#[test]
fn design_explorer_agrees_with_direct_model() {
    let pts = explore(64, Objective::p99(0.5), StageConstants::default());
    for pt in &pts {
        let model = TotalWaiting::new(pt.k, pt.stages, 0.5, 1);
        assert!((pt.mean_delay - model.mean_total_delay()).abs() < 1e-9);
        assert!((pt.delay_percentile - model.delay_quantile(0.99)).abs() < 1e-9);
    }
    // 64 = 2^6 = 4^3 = 8^2 = 64^1.
    assert_eq!(pts.len(), factorizations(64).len());
}

#[test]
fn design_explorer_max_load_is_monotone_in_budget() {
    let tight = Objective {
        p: 0.5,
        m: 1,
        percentile: 0.99,
        delay_budget: Some(12.0),
    };
    let loose = Objective {
        delay_budget: Some(40.0),
        ..tight
    };
    let a = explore(64, tight, StageConstants::default());
    let b = explore(64, loose, StageConstants::default());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!((x.k, x.stages), (y.k, y.stages));
        assert!(x.max_load.unwrap() <= y.max_load.unwrap() + 1e-12);
    }
}
