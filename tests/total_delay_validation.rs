//! Integration: the §V total-waiting-time predictions and the gamma
//! approximation of the full distribution (Tables VII–XII, Figs. 3–8)
//! against the network simulator.

use banyan_core::total_delay::TotalWaiting;
use banyan_sim::network::{run_network, NetworkConfig};
use banyan_sim::traffic::Workload;
use banyan_stats::distance::{ks_distance, total_variation};

fn run(p: f64, m: u32, n: u32, cycles: u64) -> banyan_sim::NetworkStats {
    let mut cfg = NetworkConfig::new(2, n, Workload::uniform(p, m));
    cfg.warmup_cycles = cycles / 10;
    cfg.measure_cycles = cycles;
    cfg.seed = 0x70_7A1;
    run_network(cfg)
}

#[test]
fn mean_total_prediction_tables_vii_ix() {
    for &(p, m, n, cycles) in &[
        (0.2, 1u32, 6u32, 200_000u64),
        (0.5, 1, 6, 60_000),
        (0.5, 1, 9, 30_000),
    ] {
        let stats = run(p, m, n, cycles);
        let model = TotalWaiting::new(2, n, p, m);
        let sim = stats.total_wait.mean();
        let pred = model.mean_total();
        assert!(
            (sim - pred).abs() < 0.05 * pred + 0.02,
            "p={p} m={m} n={n}: sim {sim} vs pred {pred}"
        );
    }
}

#[test]
fn variance_total_prediction_with_covariances() {
    for &(p, m, n, cycles) in &[(0.5, 1u32, 9u32, 60_000u64), (0.2, 1, 6, 200_000)] {
        let stats = run(p, m, n, cycles);
        let model = TotalWaiting::new(2, n, p, m);
        let sim = stats.total_wait.variance();
        let pred = model.var_total();
        assert!(
            (sim - pred).abs() < 0.10 * pred + 0.02,
            "p={p} m={m} n={n}: sim var {sim} vs pred {pred}"
        );
        // The covariance model must beat the independence assumption.
        let indep = model.var_total_independent();
        assert!(
            (sim - pred).abs() <= (sim - indep).abs() + 1e-9,
            "covariance model should not be worse: sim {sim}, cov {pred}, indep {indep}"
        );
    }
}

#[test]
fn m4_total_prediction() {
    let (p, m, n) = (0.125, 4u32, 6u32);
    let stats = run(p, m, n, 300_000);
    let model = TotalWaiting::new(2, n, p, m);
    let sim = stats.total_wait.mean();
    let pred = model.mean_total();
    assert!(
        (sim - pred).abs() < 0.08 * pred,
        "sim {sim} vs pred {pred}"
    );
}

#[test]
fn gamma_approximation_matches_distribution() {
    // Fig. 5 (p = 0.5, m = 1), 6 and 9 stages: the gamma fitted to the
    // *predicted* moments tracks the simulated histogram closely.
    for &n in &[6u32, 9] {
        let stats = run(0.5, 1, n, 80_000);
        let model = TotalWaiting::new(2, n, 0.5, 1);
        let g = model.gamma().unwrap();
        let ks = ks_distance(&stats.total_hist, |x| g.cdf(x));
        assert!(ks < 0.05, "n={n}: KS = {ks}");
        let tv = total_variation(&stats.total_hist, |v| g.bin_prob(v));
        assert!(tv < 0.08, "n={n}: TV = {tv}");
    }
}

#[test]
fn gamma_tail_is_accurate() {
    // The paper stresses the tails. Compare P(W > q99) under the gamma
    // against the empirical 1%.
    let n = 9;
    let stats = run(0.5, 1, n, 150_000);
    let model = TotalWaiting::new(2, n, 0.5, 1);
    let g = model.gamma().unwrap();
    let q99 = stats.total_hist.quantile(0.99).unwrap();
    let emp = 1.0 - stats.total_hist.cdf_at(q99);
    let gam = g.sf(q99 as f64 + 1.0);
    assert!(
        (gam - emp).abs() < 0.6 * emp,
        "tail: gamma {gam} vs empirical {emp}"
    );
}

#[test]
fn total_delay_equals_waiting_plus_pipeline_service() {
    // Empty-network check embedded in a loaded one: minimum total delay
    // equals n + m − 1, i.e. minimum total waiting is 0.
    let stats = run(0.2, 4, 3, 50_000);
    assert_eq!(stats.total_hist.quantile(1e-9).map(|_| ()), Some(()));
    assert_eq!(
        stats.total_wait.min(),
        0.0,
        "some message must traverse unobstructed at this load"
    );
    let model = TotalWaiting::new(2, 3, 0.2, 4);
    assert_eq!(model.total_service(), 6);
}
