//! Integration: the calibration machinery re-derives the paper's
//! interpolation constants from our own simulator — closing the loop the
//! paper itself used ("We use simulations to estimate r(1/2), and then
//! simply linearly interpolate").

use banyan_core::calibrate::{fit_alpha, fit_mean_coeff, MeanRatioPoint};
use banyan_core::models::uniform_queue;
use banyan_sim::network::{run_network, NetworkConfig};
use banyan_sim::traffic::Workload;

fn profile(p: f64, cycles: u64, seed: u64) -> Vec<f64> {
    let mut cfg = NetworkConfig::new(2, 8, Workload::uniform(p, 1));
    cfg.warmup_cycles = cycles / 10;
    cfg.measure_cycles = cycles;
    cfg.seed = seed;
    let stats = run_network(cfg);
    stats.stage_waits.iter().map(|w| w.mean()).collect()
}

#[test]
fn mean_coefficient_refits_near_paper_value() {
    // Paper: r(p) = 1 + 2p/5 at k = 2, i.e. mean_coeff = 4/5 with the
    // 1/k scaling. Refit from three loads.
    let mut pts = Vec::new();
    for (i, &p) in [0.2, 0.5, 0.8].iter().enumerate() {
        let means = profile(p, 120_000, 0xCAFE + i as u64);
        let w_inf = 0.5 * (means[6] + means[7]);
        let q = uniform_queue(2, p, 1).unwrap();
        pts.push(MeanRatioPoint {
            p,
            k: 2,
            w1: q.mean_wait(),
            w_inf,
        });
    }
    let fitted = fit_mean_coeff(&pts).unwrap();
    // The paper notes r(p) is "actually slightly concave", so a linear
    // refit lands near but not exactly on 0.8.
    assert!(
        (fitted - 0.8).abs() < 0.25,
        "fitted mean_coeff = {fitted}, expected near 0.8"
    );
}

#[test]
fn alpha_refits_near_two_fifths() {
    let means = profile(0.5, 250_000, 0xBEEF);
    let w_inf = 0.5 * (means[6] + means[7]);
    let alpha = fit_alpha(&means[..5], w_inf).unwrap();
    assert!(
        (alpha - 0.4).abs() < 0.15,
        "fitted alpha = {alpha}, paper value 0.4"
    );
}

#[test]
fn ratio_at_half_load_matches_paper_anchor() {
    // The calibration anchor itself: w_∞/w₁ ≈ 1.2 at k = 2, p = 0.5
    // (w₁ = 0.25, w_∞ ≈ 0.3).
    let means = profile(0.5, 250_000, 0xF00D);
    let w_inf = 0.5 * (means[6] + means[7]);
    let ratio = w_inf / 0.25;
    assert!(
        (ratio - 1.2).abs() < 0.05,
        "simulated r(0.5) = {ratio}, paper ≈ 1.2"
    );
}
