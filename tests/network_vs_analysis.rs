//! Integration: the multistage network simulator against the paper's
//! per-stage analysis — exact at stage 1, approximate (§IV) deeper in.

use banyan_core::later_stages::StageConstants;
use banyan_core::models::{nonuniform_queue, uniform_queue};
use banyan_core::total_delay::TotalWaiting;
use banyan_sim::network::{run_network, NetworkConfig};
use banyan_sim::traffic::Workload;

fn deep_net(k: u32, stages: u32, wl: Workload, cycles: u64, corr: bool) -> banyan_sim::NetworkStats {
    let mut cfg = NetworkConfig::new(k, stages, wl);
    cfg.warmup_cycles = cycles / 10;
    cfg.measure_cycles = cycles;
    cfg.collect_correlations = corr;
    cfg.seed = 0xABCD;
    run_network(cfg)
}

#[test]
fn stage1_exact_across_loads() {
    for &p in &[0.2, 0.5, 0.8] {
        let stats = deep_net(2, 6, Workload::uniform(p, 1), 60_000, false);
        let q = uniform_queue(2, p, 1).unwrap();
        let w1 = stats.stage_waits[0].mean();
        assert!(
            (w1 - q.mean_wait()).abs() < 0.03 * (1.0 + q.mean_wait()),
            "p={p}: {w1} vs {}",
            q.mean_wait()
        );
        let v1 = stats.stage_waits[0].variance();
        assert!(
            (v1 - q.var_wait()).abs() < 0.06 * (1.0 + q.var_wait()),
            "p={p}: {v1} vs {}",
            q.var_wait()
        );
    }
}

#[test]
fn deep_stage_mean_matches_w_inf() {
    // §IV-A: w_∞ ≈ (1 + 2p/5)·w₁ for k = 2; the paper reports the
    // approximation is "slightly low for p small and slightly high for p
    // large", so allow a 6% band.
    let consts = StageConstants::default();
    for &p in &[0.2, 0.5, 0.8] {
        let stats = deep_net(2, 8, Workload::uniform(p, 1), 60_000, false);
        let deep = 0.5 * (stats.stage_waits[6].mean() + stats.stage_waits[7].mean());
        let pred = consts.w_inf(p, 2);
        assert!(
            (deep - pred).abs() < 0.06 * pred + 0.01,
            "p={p}: sim {deep} vs predicted {pred}"
        );
    }
}

#[test]
fn stage_sequence_approaches_limit_geometrically() {
    let stats = deep_net(2, 8, Workload::uniform(0.5, 1), 120_000, false);
    let means: Vec<f64> = stats.stage_waits.iter().map(|w| w.mean()).collect();
    // Monotone non-decreasing within noise.
    for w in means.windows(2) {
        assert!(w[1] > w[0] - 0.005, "per-stage means should increase: {means:?}");
    }
    // Gap shrinks by roughly alpha per stage early on.
    let w_inf = 0.5 * (means[6] + means[7]);
    let g1 = w_inf - means[0];
    let g2 = w_inf - means[1];
    let g3 = w_inf - means[2];
    assert!(g2 / g1 < 0.65, "approach too slow: {means:?}");
    assert!(g3 / g2 < 0.75, "approach too slow: {means:?}");
}

#[test]
fn m4_interior_stages_match_scaled_model() {
    // §IV-B, Table III row m = 4 (ρ = 0.5): w_∞ ≈ 1.2, v_∞ ≈ 4.667.
    let consts = StageConstants::default();
    let stats = deep_net(2, 8, Workload::uniform(0.125, 4), 200_000, false);
    let deep_w = 0.5 * (stats.stage_waits[6].mean() + stats.stage_waits[7].mean());
    let pred_w = consts.w_inf_m(0.125, 2, 4.0);
    assert!(
        (deep_w - pred_w).abs() < 0.08 * pred_w,
        "sim {deep_w} vs predicted {pred_w}"
    );
    let deep_v = 0.5
        * (stats.stage_waits[6].variance() + stats.stage_waits[7].variance());
    let pred_v = consts.v_inf_m(0.125, 2, 4.0);
    assert!(
        (deep_v - pred_v).abs() < 0.12 * pred_v,
        "sim {deep_v} vs predicted {pred_v}"
    );
}

#[test]
fn nonuniform_deep_stage_behaviour() {
    // Hot-spot traffic reduces deep-stage waiting below the uniform value
    // and the exact first stage matches §III-A-3.
    let qf = 0.3;
    let stats = deep_net(2, 8, Workload::hotspot(0.5, qf), 80_000, false);
    let exact = nonuniform_queue(2, 0.5, qf, 1).unwrap();
    let w1 = stats.stage_waits[0].mean();
    assert!(
        (w1 - exact.mean_wait()).abs() < 0.02,
        "{w1} vs {}",
        exact.mean_wait()
    );
    let uniform = deep_net(2, 8, Workload::uniform(0.5, 1), 80_000, false);
    let deep_hot = stats.stage_waits[7].mean();
    let deep_uni = uniform.stage_waits[7].mean();
    assert!(deep_hot < deep_uni, "{deep_hot} vs {deep_uni}");
}

#[test]
fn cross_stage_correlations_match_covariance_model() {
    // Table VI: adjacent-stage correlation ≈ a = 0.12, next ≈ ab = 0.048.
    let stats = deep_net(2, 8, Workload::uniform(0.5, 1), 150_000, true);
    let corr = stats.correlations.as_ref().unwrap();
    let model = TotalWaiting::new(2, 8, 0.5, 1);
    // Use interior stages (spatial steady state).
    let adj = corr.correlation(4, 5);
    assert!(
        (adj - model.predicted_correlation(1)).abs() < 0.03,
        "adjacent: sim {adj} vs model {}",
        model.predicted_correlation(1)
    );
    let two = corr.correlation(4, 6);
    assert!(
        (two - model.predicted_correlation(2)).abs() < 0.02,
        "lag 2: sim {two} vs model {}",
        model.predicted_correlation(2)
    );
    let three = corr.correlation(4, 7);
    assert!(
        (three - model.predicted_correlation(3)).abs() < 0.015,
        "lag 3: sim {three} vs model {}",
        model.predicted_correlation(3)
    );
}

#[test]
fn sum_of_stage_covariances_equals_total_variance() {
    // Internal consistency of the instrumentation: Var(Σ w_i) computed
    // from the correlation matrix must equal the directly measured total
    // variance.
    let stats = deep_net(2, 6, Workload::uniform(0.5, 1), 40_000, true);
    let corr = stats.correlations.as_ref().unwrap();
    let direct = stats.total_wait.variance();
    let from_matrix = corr.sum_variance();
    assert!(
        (direct - from_matrix).abs() < 1e-6 * direct.max(1.0),
        "{direct} vs {from_matrix}"
    );
}
