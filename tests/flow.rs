//! Tier-1 contracts for the feed-forward flow engine (`banyan-flow`).
//!
//! Two pillars:
//!
//! * **Banyan collapse** — on an omega or butterfly `FlowGraph` routing
//!   the identity permutation, the generalized engine must reproduce the
//!   §V `TotalWaiting` closed form *bit for bit* (`f64::to_bits`
//!   equality): the per-hop kernel is the same `StageConstants` law at
//!   the same `(i, k, p, m)` arguments, summed in the same order, so any
//!   bit of drift means the generalization silently changed the model.
//! * **Mesh validation** — on a 2×2 mesh with XY routing (a topology the
//!   banyan machinery cannot express) the analytic per-flow density must
//!   track the event simulator within KS < 0.05 at p = 0.5 — the
//!   `network_vs_analysis` pattern applied to the Kleinrock
//!   independence assumption.

use banyan_obs::tail::{ks_distance, table_cdf};
use banyan_prng::check::check;
use banyan_repro::flow::{butterfly, mesh, omega, simulate_flows, FlowAnalysis, FlowGraph, FlowSimConfig};
use banyan_repro::prelude::*;

/// The six table/figure-family configurations plus wider switches.
const COLLAPSE_CONFIGS: &[(u32, u32, f64, u32)] = &[
    (2, 3, 0.5, 1),
    (2, 6, 0.2, 1),
    (2, 9, 0.8, 1),
    (2, 4, 0.125, 4),
    (2, 3, 0.2, 4),
    (3, 3, 0.4, 1),
    (4, 2, 0.3, 1),
    (4, 3, 0.15, 2),
];

#[test]
fn omega_collapses_to_total_delay_bit_for_bit() {
    for &(k, n, p, m) in COLLAPSE_CONFIGS {
        let g = omega(k, n, p, m);
        let an = FlowAnalysis::new(&g).unwrap();
        let t = TotalWaiting::new(k, n, p, m);
        for f in 0..g.flows().len() {
            assert_eq!(
                an.mean_wait(f).to_bits(),
                t.mean_total().to_bits(),
                "mean k={k} n={n} p={p} m={m} flow={f}"
            );
            assert_eq!(
                an.var_wait(f).to_bits(),
                t.var_total().to_bits(),
                "var k={k} n={n} p={p} m={m} flow={f}"
            );
            assert_eq!(an.total_service(f), t.total_service());
            assert_eq!(
                an.delay_quantile(f, 0.99).to_bits(),
                t.delay_quantile(0.99).to_bits(),
                "p99 k={k} n={n} p={p} m={m} flow={f}"
            );
        }
    }
}

#[test]
fn butterfly_with_extra_stages_collapses_at_total_depth() {
    // `extra` straight stages in front of an n-stage butterfly behave
    // like an (n + extra)-stage banyan.
    for &(k, n, extra, p, m) in &[(2u32, 3u32, 0u32, 0.5, 1u32), (2, 3, 2, 0.5, 1), (3, 2, 1, 0.2, 2)] {
        let g = butterfly(k, n, extra, p, m);
        let an = FlowAnalysis::new(&g).unwrap();
        let t = TotalWaiting::new(k, n + extra, p, m);
        for f in 0..g.flows().len() {
            assert_eq!(an.mean_wait(f).to_bits(), t.mean_total().to_bits());
            assert_eq!(an.var_wait(f).to_bits(), t.var_total().to_bits());
            assert_eq!(an.total_service(f), t.total_service());
        }
    }
}

#[test]
fn random_feedforward_dags_yield_finite_normalized_densities() {
    check(24, |g| {
        // A random layered DAG: every node links forward to one random
        // next-layer node (last layer ejects), flows follow the links
        // from random start layers, so the precedence relation is
        // automatically feed-forward.
        let layers = g.usize(2..5);
        let width = g.usize(1..4);
        let mut fg = FlowGraph::new();
        let mut ids = Vec::new();
        for l in 0..layers {
            let mut row = Vec::new();
            for w in 0..width {
                let fan_in = g.u32(2..6);
                let m = g.u32(1..4);
                row.push(fg.add_node(
                    format!("n{l}x{w}"),
                    fan_in,
                    ServiceDist::Constant(m),
                ));
            }
            ids.push(row);
        }
        // One forward link per node; ejection ports on the last layer.
        let mut out_link = vec![0usize; layers * width];
        for l in 0..layers {
            for w in 0..width {
                let to = (l + 1 < layers).then(|| ids[l + 1][g.usize(0..width)]);
                out_link[ids[l][w]] = fg.add_link(ids[l][w], to);
            }
        }
        // Flows: from every node, follow out-links to ejection. Rates
        // small enough that even fully-shared links stay at ρ < 0.9
        // (≤ layers·width flows of size ≤ 3 on one link).
        let cap = 0.9 / (3.0 * (layers * width) as f64);
        for l in 0..layers {
            for w in 0..width {
                let rate = g.f64(0.001..cap);
                let mut path = vec![out_link[ids[l][w]]];
                while let Some(next) = fg.links()[*path.last().unwrap()].to {
                    path.push(out_link[next]);
                }
                let dst = {
                    let last = fg.links()[*path.last().unwrap()];
                    last.from
                };
                fg.add_flow(ids[l][w], dst, rate, path).unwrap();
            }
        }
        let an = FlowAnalysis::new(&fg).expect("ρ < 0.9 everywhere by construction");
        for f in 0..fg.flows().len() {
            let mean = an.mean_wait(f);
            let var = an.var_wait(f);
            assert!(mean.is_finite() && mean >= 0.0, "mean {mean}");
            assert!(var.is_finite() && var >= 0.0, "var {var}");
            let pmf = an.waiting_pmf(f).expect("density within support budget");
            let total: f64 = pmf.iter().sum();
            assert_eq!(total.to_bits(), 1.0f64.to_bits(), "flow {f} mass {total}");
            assert!(pmf.iter().all(|&x| (0.0..=1.0).contains(&x) && x.is_finite()));
        }
    });
}

/// The pinned acceptance gate: analytic per-flow densities on a 2×2
/// mesh (XY routing, all-to-all, p = 0.5, m = 1) vs the event
/// simulator, KS < 0.05 for every one of the 12 flows.
#[test]
fn mesh_2x2_analytic_density_matches_event_sim() {
    let g = mesh(2, 2, 0.5, 1);
    let an = FlowAnalysis::new(&g).unwrap();
    let sketches = simulate_flows(
        &g,
        &FlowSimConfig {
            warmup_cycles: 2_000,
            measure_cycles: 40_000,
            reps: 4,
            seed: 42,
        },
    );
    for (f, sk) in sketches.iter().enumerate() {
        assert!(sk.count() > 5_000, "flow {f} undersampled: {}", sk.count());
        let table = an.wait_cdf_table(f).unwrap();
        let ks = ks_distance(sk, |x| table_cdf(&table, x));
        assert!(
            ks < 0.05,
            "flow {f}: KS {ks:.4} vs analytic density (mean sim {:.3} vs analytic {:.3})",
            sk.mean(),
            an.mean_wait(f)
        );
    }
}
