//! Smoke tests for the `banyan` CLI binary.

use std::process::Command;

fn banyan(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_banyan"))
        .args(args)
        .output()
        .expect("spawn banyan binary");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn first_stage_reports_exact_values() {
    let (ok, stdout, _) = banyan(&["first-stage", "--k", "2", "--p", "0.5"]);
    assert!(ok);
    assert!(stdout.contains("E(w)   = 0.250000"), "{stdout}");
    assert!(stdout.contains("Var(w) = 0.250000"));
    assert!(stdout.contains("P(idle)"));
}

#[test]
fn first_stage_supports_geometric_and_mix() {
    let (ok, stdout, _) = banyan(&["first-stage", "--p", "0.3", "--geometric-mu", "0.75"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("rho = 0.4"));
    let (ok, stdout, _) = banyan(&["first-stage", "--p", "0.05", "--mix", "4:0.5,8:0.5"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("rho = 0.3"));
}

#[test]
fn total_command_prints_model() {
    let (ok, stdout, _) = banyan(&["total", "--stages", "12", "--p", "0.5", "--quantiles"]);
    assert!(ok);
    assert!(stdout.contains("E(total waiting)   = 3.516"), "{stdout}");
    assert!(stdout.contains("a = 0.1200, b = 0.4000"));
    assert!(stdout.contains("delay p999"));
}

#[test]
fn simulate_command_runs_small_network() {
    let (ok, stdout, _) = banyan(&[
        "simulate", "--stages", "3", "--p", "0.4", "--cycles", "2000", "--seed", "7",
    ]);
    assert!(ok);
    assert!(stdout.contains("delivered"));
    assert!(stdout.contains("stage  3"));
    assert!(stdout.contains("total waiting"));
}

#[test]
fn pmf_command_prints_distribution() {
    let (ok, stdout, _) = banyan(&["pmf", "--p", "0.5", "--len", "8"]);
    assert!(ok);
    assert!(stdout.lines().count() >= 9);
    assert!(stdout.contains("P(w)"));
}

#[test]
fn unknown_flag_is_rejected_with_suggestion() {
    // Regression: `--stage` (for `--stages`) used to be silently ignored
    // and the run proceeded with the default stage count.
    let (ok, _, stderr) = banyan(&["simulate", "--stage", "3", "--cycles", "500"]);
    assert!(!ok);
    assert!(stderr.contains("unknown flag --stage"), "{stderr}");
    assert!(stderr.contains("did you mean --stages?"), "{stderr}");
    // A flag valid for one command is still unknown for another.
    let (ok, _, stderr) = banyan(&["pmf", "--cycles", "500"]);
    assert!(!ok);
    assert!(stderr.contains("unknown flag --cycles"), "{stderr}");
}

#[test]
fn progress_flag_leaves_stdout_byte_identical() {
    let args = ["simulate", "--stages", "3", "--p", "0.4", "--cycles", "2000", "--seed", "7"];
    let (ok, plain_stdout, plain_stderr) = banyan(&args);
    assert!(ok);
    let mut with_progress: Vec<&str> = args.to_vec();
    with_progress.push("--progress");
    let (ok, progress_stdout, progress_stderr) = banyan(&with_progress);
    assert!(ok);
    // The heartbeat goes to stderr only; stdout stays machine-parseable
    // and byte-identical.
    assert_eq!(progress_stdout, plain_stdout);
    assert!(progress_stderr.len() > plain_stderr.len(), "{progress_stderr:?}");
    assert!(progress_stderr.contains("banyan"), "{progress_stderr:?}");
}

#[test]
fn telemetry_flag_writes_manifest_and_keeps_results_identical() {
    let dir = std::env::temp_dir().join(format!("banyan_cli_test_{}", std::process::id()));
    let path = dir.join("run.manifest.json");
    let args = ["simulate", "--stages", "3", "--p", "0.4", "--cycles", "2000", "--reps", "2"];
    let (ok, plain_stdout, _) = banyan(&args);
    assert!(ok);
    let mut with_tel: Vec<&str> = args.to_vec();
    let path_str = path.to_str().unwrap().to_string();
    with_tel.extend(["--telemetry", &path_str]);
    let (ok, tel_stdout, stderr) = banyan(&with_tel);
    assert!(ok, "{stderr}");
    assert_eq!(tel_stdout, plain_stdout, "telemetry must not perturb results");
    assert!(stderr.contains("telemetry manifest written"), "{stderr}");
    let manifest = std::fs::read_to_string(&path).unwrap();
    for key in [
        "\"schema\"",
        "\"banyan-obs/manifest/v1\"",
        "\"net.injected_total\"",
        "\"net.delivered_total\"",
        "\"net/measure\"",
        "\"reps\": 2",
    ] {
        assert!(manifest.contains(key), "missing {key} in manifest");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn simulate_reps_merge_more_messages() {
    let base = ["simulate", "--stages", "3", "--p", "0.4", "--cycles", "1500"];
    let (ok, one, _) = banyan(&base);
    assert!(ok);
    let mut rep_args: Vec<&str> = base.to_vec();
    rep_args.extend(["--reps", "3", "--threads", "2"]);
    let (ok, three, _) = banyan(&rep_args);
    assert!(ok);
    let delivered = |s: &str| -> u64 {
        s.lines()
            .find_map(|l| l.strip_prefix("delivered ")?.split(' ').next()?.parse().ok())
            .expect("delivered line")
    };
    assert!(delivered(&three) > 2 * delivered(&one));
}

#[test]
fn unstable_load_is_an_error() {
    let (ok, _, stderr) = banyan(&["total", "--p", "0.5", "--m", "4"]);
    assert!(!ok);
    assert!(stderr.contains("unstable"), "{stderr}");
}

#[test]
fn unknown_command_fails_with_usage() {
    let (ok, _, stderr) = banyan(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("usage"));
}

#[test]
fn help_succeeds() {
    let (ok, stdout, _) = banyan(&["help"]);
    assert!(ok);
    assert!(stdout.contains("commands"));
}
