//! Smoke tests for the `banyan` CLI binary.

use std::process::Command;

fn banyan(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_banyan"))
        .args(args)
        .output()
        .expect("spawn banyan binary");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn first_stage_reports_exact_values() {
    let (ok, stdout, _) = banyan(&["first-stage", "--k", "2", "--p", "0.5"]);
    assert!(ok);
    assert!(stdout.contains("E(w)   = 0.250000"), "{stdout}");
    assert!(stdout.contains("Var(w) = 0.250000"));
    assert!(stdout.contains("P(idle)"));
}

#[test]
fn first_stage_supports_geometric_and_mix() {
    let (ok, stdout, _) = banyan(&["first-stage", "--p", "0.3", "--geometric-mu", "0.75"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("rho = 0.4"));
    let (ok, stdout, _) = banyan(&["first-stage", "--p", "0.05", "--mix", "4:0.5,8:0.5"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("rho = 0.3"));
}

#[test]
fn total_command_prints_model() {
    let (ok, stdout, _) = banyan(&["total", "--stages", "12", "--p", "0.5", "--quantiles"]);
    assert!(ok);
    assert!(stdout.contains("E(total waiting)   = 3.516"), "{stdout}");
    assert!(stdout.contains("a = 0.1200, b = 0.4000"));
    assert!(stdout.contains("delay p999"));
}

#[test]
fn simulate_command_runs_small_network() {
    let (ok, stdout, _) = banyan(&[
        "simulate", "--stages", "3", "--p", "0.4", "--cycles", "2000", "--seed", "7",
    ]);
    assert!(ok);
    assert!(stdout.contains("delivered"));
    assert!(stdout.contains("stage  3"));
    assert!(stdout.contains("total waiting"));
}

#[test]
fn pmf_command_prints_distribution() {
    let (ok, stdout, _) = banyan(&["pmf", "--p", "0.5", "--len", "8"]);
    assert!(ok);
    assert!(stdout.lines().count() >= 9);
    assert!(stdout.contains("P(w)"));
}

#[test]
fn unstable_load_is_an_error() {
    let (ok, _, stderr) = banyan(&["total", "--p", "0.5", "--m", "4"]);
    assert!(!ok);
    assert!(stderr.contains("unstable"), "{stderr}");
}

#[test]
fn unknown_command_fails_with_usage() {
    let (ok, _, stderr) = banyan(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("usage"));
}

#[test]
fn help_succeeds() {
    let (ok, stdout, _) = banyan(&["help"]);
    assert!(ok);
    assert!(stdout.contains("commands"));
}
