//! Smoke tests for the `banyan` CLI binary.

use std::process::Command;

fn banyan(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_banyan"))
        .args(args)
        .output()
        .expect("spawn banyan binary");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn first_stage_reports_exact_values() {
    let (ok, stdout, _) = banyan(&["first-stage", "--k", "2", "--p", "0.5"]);
    assert!(ok);
    assert!(stdout.contains("E(w)   = 0.250000"), "{stdout}");
    assert!(stdout.contains("Var(w) = 0.250000"));
    assert!(stdout.contains("P(idle)"));
}

#[test]
fn first_stage_supports_geometric_and_mix() {
    let (ok, stdout, _) = banyan(&["first-stage", "--p", "0.3", "--geometric-mu", "0.75"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("rho = 0.4"));
    let (ok, stdout, _) = banyan(&["first-stage", "--p", "0.05", "--mix", "4:0.5,8:0.5"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("rho = 0.3"));
}

#[test]
fn total_command_prints_model() {
    let (ok, stdout, _) = banyan(&["total", "--stages", "12", "--p", "0.5", "--quantiles"]);
    assert!(ok);
    assert!(stdout.contains("E(total waiting)   = 3.516"), "{stdout}");
    assert!(stdout.contains("a = 0.1200, b = 0.4000"));
    assert!(stdout.contains("delay p999"));
}

#[test]
fn simulate_command_runs_small_network() {
    let (ok, stdout, _) = banyan(&[
        "simulate", "--stages", "3", "--p", "0.4", "--cycles", "2000", "--seed", "7",
    ]);
    assert!(ok);
    assert!(stdout.contains("delivered"));
    assert!(stdout.contains("stage  3"));
    assert!(stdout.contains("total waiting"));
}

#[test]
fn pmf_command_prints_distribution() {
    let (ok, stdout, _) = banyan(&["pmf", "--p", "0.5", "--len", "8"]);
    assert!(ok);
    assert!(stdout.lines().count() >= 9);
    assert!(stdout.contains("P(w)"));
}

#[test]
fn unknown_flag_is_rejected_with_suggestion() {
    // Regression: `--stage` (for `--stages`) used to be silently ignored
    // and the run proceeded with the default stage count.
    let (ok, _, stderr) = banyan(&["simulate", "--stage", "3", "--cycles", "500"]);
    assert!(!ok);
    assert!(stderr.contains("unknown flag --stage"), "{stderr}");
    assert!(stderr.contains("did you mean --stages?"), "{stderr}");
    // A flag valid for one command is still unknown for another.
    let (ok, _, stderr) = banyan(&["pmf", "--cycles", "500"]);
    assert!(!ok);
    assert!(stderr.contains("unknown flag --cycles"), "{stderr}");
}

#[test]
fn progress_flag_leaves_stdout_byte_identical() {
    let args = ["simulate", "--stages", "3", "--p", "0.4", "--cycles", "2000", "--seed", "7"];
    let (ok, plain_stdout, plain_stderr) = banyan(&args);
    assert!(ok);
    let mut with_progress: Vec<&str> = args.to_vec();
    with_progress.push("--progress");
    let (ok, progress_stdout, progress_stderr) = banyan(&with_progress);
    assert!(ok);
    // The heartbeat goes to stderr only; stdout stays machine-parseable
    // and byte-identical.
    assert_eq!(progress_stdout, plain_stdout);
    assert!(progress_stderr.len() > plain_stderr.len(), "{progress_stderr:?}");
    assert!(progress_stderr.contains("banyan"), "{progress_stderr:?}");
}

#[test]
fn telemetry_flag_writes_manifest_and_keeps_results_identical() {
    let dir = std::env::temp_dir().join(format!("banyan_cli_test_{}", std::process::id()));
    let path = dir.join("run.manifest.json");
    let args = ["simulate", "--stages", "3", "--p", "0.4", "--cycles", "2000", "--reps", "2"];
    let (ok, plain_stdout, _) = banyan(&args);
    assert!(ok);
    let mut with_tel: Vec<&str> = args.to_vec();
    let path_str = path.to_str().unwrap().to_string();
    with_tel.extend(["--telemetry", &path_str]);
    let (ok, tel_stdout, stderr) = banyan(&with_tel);
    assert!(ok, "{stderr}");
    assert_eq!(tel_stdout, plain_stdout, "telemetry must not perturb results");
    assert!(stderr.contains("telemetry manifest written"), "{stderr}");
    let manifest = std::fs::read_to_string(&path).unwrap();
    for key in [
        "\"schema\"",
        "\"banyan-obs/manifest/v2\"",
        "\"net.injected_total\"",
        "\"net.delivered_total\"",
        "\"net/measure\"",
        "\"reps\": 2",
        "\"distributions\"",
        "\"span_quantiles\"",
        "\"drift\"",
    ] {
        assert!(manifest.contains(key), "missing {key} in manifest");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dist_out_writes_consistent_sketches_and_drift() {
    use banyan_repro::obs::json::JsonValue;
    let dir = std::env::temp_dir().join(format!("banyan_cli_dist_{}", std::process::id()));
    let path = dir.join("d.json");
    let path_str = path.to_str().unwrap().to_string();
    let args = [
        "simulate", "--stages", "3", "--p", "0.5", "--cycles", "2000", "--seed", "11",
        "--dist-out", &path_str,
    ];
    let (ok, stdout, stderr) = banyan(&args);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("distribution dump written"), "{stderr}");
    let delivered: u64 = stdout
        .lines()
        .find_map(|l| l.strip_prefix("delivered ")?.split(' ').next()?.parse().ok())
        .expect("delivered line");
    let doc = JsonValue::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(
        doc.get("schema").and_then(JsonValue::as_str),
        Some("banyan-obs/dist/v1")
    );
    // Each per-stage pmf carries exactly one count per delivered message.
    let dists = doc.get("distributions").unwrap().as_object().unwrap();
    for stage in ["net.wait.stage01", "net.wait.stage02", "net.wait.stage03", "net.wait.total"] {
        let sk = dists
            .iter()
            .find(|(name, _)| name == stage)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("missing sketch {stage}"));
        let count = sk.get("count").unwrap().as_u64().unwrap();
        assert_eq!(count, delivered, "{stage}");
        let counts = sk.get("counts").unwrap().as_array().unwrap();
        let sum: u64 = counts.iter().map(|c| c.as_u64().unwrap()).sum();
        assert_eq!(sum, count, "{stage}: pmf mass");
        for label in ["p50", "p90", "p99", "p999"] {
            assert!(sk.get("quantiles").unwrap().get(label).is_some(), "{stage}: {label}");
        }
    }
    // Drift reports cover every stage plus the total, with KS in [0, 1].
    let drift = doc.get("drift").unwrap().as_array().unwrap();
    assert_eq!(drift.len(), 4, "3 stages + total");
    for r in drift {
        let ks = r.get("ks").unwrap().as_f64().unwrap();
        assert!((0.0..=1.0).contains(&ks), "ks = {ks}");
    }
    // Stage 1 is simulated against the exact Theorem 1 law: KS is tiny.
    let ks1 = drift[0].get("ks").unwrap().as_f64().unwrap();
    assert!(ks1 < 0.02, "stage-1 KS drift vs Theorem 1: {ks1}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_out_writes_loadable_trace_events() {
    use banyan_repro::obs::json::JsonValue;
    let dir = std::env::temp_dir().join(format!("banyan_cli_trace_{}", std::process::id()));
    let path = dir.join("tr.json");
    std::fs::create_dir_all(&dir).unwrap();
    let path_str = path.to_str().unwrap().to_string();
    let (ok, _, stderr) = banyan(&[
        "simulate", "--stages", "3", "--p", "0.4", "--cycles", "1500", "--trace-out", &path_str,
    ]);
    assert!(ok, "{stderr}");
    let doc = JsonValue::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
    let events = doc.get("traceEvents").unwrap().as_array().unwrap();
    assert!(!events.is_empty());
    // Structure Perfetto accepts: metadata names the process, complete
    // events carry name/cat/ts/dur/pid/tid.
    assert!(events.iter().any(|e| {
        e.get("ph").and_then(JsonValue::as_str) == Some("M")
            && e.get("name").and_then(JsonValue::as_str) == Some("process_name")
    }));
    let complete: Vec<_> = events
        .iter()
        .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("X"))
        .collect();
    assert!(!complete.is_empty());
    for e in &complete {
        assert!(e.get("name").and_then(JsonValue::as_str).is_some());
        assert!(e.get("ts").and_then(JsonValue::as_u64).is_some());
        assert!(e.get("dur").and_then(JsonValue::as_u64).is_some());
        assert!(e.get("pid").and_then(JsonValue::as_u64).is_some());
        assert!(e.get("tid").and_then(JsonValue::as_u64).is_some());
    }
    // The simulator phases appear as named spans.
    assert!(complete
        .iter()
        .any(|e| e.get("name").and_then(JsonValue::as_str) == Some("net/measure")));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn observability_flags_keep_stdout_byte_identical() {
    // Acceptance shape from the issue: --reps 8 with all three artifact
    // flags produces the same stdout as a bare run, plus three files.
    let dir = std::env::temp_dir().join(format!("banyan_cli_obs_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let t = dir.join("t.json");
    let d = dir.join("d.json");
    let tr = dir.join("tr.json");
    let (t_s, d_s, tr_s) = (
        t.to_str().unwrap().to_string(),
        d.to_str().unwrap().to_string(),
        tr.to_str().unwrap().to_string(),
    );
    let base = ["simulate", "--stages", "3", "--p", "0.5", "--cycles", "1000", "--reps", "8"];
    let (ok, plain_stdout, _) = banyan(&base);
    assert!(ok);
    let mut full: Vec<&str> = base.to_vec();
    full.extend(["--telemetry", &t_s, "--dist-out", &d_s, "--trace-out", &tr_s]);
    let (ok, obs_stdout, stderr) = banyan(&full);
    assert!(ok, "{stderr}");
    assert_eq!(obs_stdout, plain_stdout, "observability must not perturb results");
    for p in [&t, &d, &tr] {
        assert!(p.exists(), "missing artifact {}", p.display());
    }
    let manifest = std::fs::read_to_string(&t).unwrap();
    assert!(manifest.contains("\"banyan-obs/manifest/v2\""));
    assert!(manifest.contains("net.drift.ks_ppm.net.wait.stage01"), "drift gauge missing");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn report_command_prints_drift_table() {
    let (ok, stdout, stderr) = banyan(&[
        "report", "--stages", "3", "--p", "0.5", "--cycles", "2000", "--seed", "3",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("observed vs analytic"), "{stdout}");
    for needle in ["net.wait.stage01", "net.wait.stage03", "net.wait.total", "KS", "p999"] {
        assert!(stdout.contains(needle), "missing {needle} in:\n{stdout}");
    }
}

#[test]
fn simulate_reps_merge_more_messages() {
    let base = ["simulate", "--stages", "3", "--p", "0.4", "--cycles", "1500"];
    let (ok, one, _) = banyan(&base);
    assert!(ok);
    let mut rep_args: Vec<&str> = base.to_vec();
    rep_args.extend(["--reps", "3", "--threads", "2"]);
    let (ok, three, _) = banyan(&rep_args);
    assert!(ok);
    let delivered = |s: &str| -> u64 {
        s.lines()
            .find_map(|l| l.strip_prefix("delivered ")?.split(' ').next()?.parse().ok())
            .expect("delivered line")
    };
    assert!(delivered(&three) > 2 * delivered(&one));
}

#[test]
fn equals_form_flags_match_space_form() {
    // Regression: `--k=4` used to be stored as a flag literally named
    // "k=4", so the run silently fell back to the default k.
    let (ok, spaced, _) = banyan(&["first-stage", "--k", "4", "--p", "0.5"]);
    assert!(ok);
    let (ok, equals, stderr) = banyan(&["first-stage", "--k=4", "--p=0.5"]);
    assert!(ok, "{stderr}");
    assert_eq!(equals, spaced, "--k=4 must behave exactly like --k 4");
    let (_, default_k, _) = banyan(&["first-stage", "--p", "0.5"]);
    assert_ne!(equals, default_k, "--k=4 silently ignored");
}

#[test]
fn duplicate_flags_are_rejected() {
    // Regression: a repeated flag used to silently take the last value.
    let (ok, _, stderr) = banyan(&["first-stage", "--p", "0.2", "--p", "0.7"]);
    assert!(!ok);
    assert!(stderr.contains("duplicate flag --p"), "{stderr}");
    // Mixed forms count as duplicates too.
    let (ok, _, stderr) = banyan(&["total", "--stages=4", "--stages", "8"]);
    assert!(!ok);
    assert!(stderr.contains("duplicate flag --stages"), "{stderr}");
}

#[test]
fn invalid_service_mixes_are_rejected() {
    // Regression: mixes with probabilities outside [0, 1] or totals far
    // from 1 used to be accepted and fed garbage into the model.
    let (ok, _, stderr) = banyan(&["first-stage", "--p", "0.1", "--mix", "4:1.5,8:-0.5"]);
    assert!(!ok);
    assert!(stderr.contains("must be a probability in [0, 1]"), "{stderr}");
    let (ok, _, stderr) = banyan(&["first-stage", "--p", "0.1", "--mix", "4:0.3,8:0.3"]);
    assert!(!ok);
    assert!(stderr.contains("must sum to 1"), "{stderr}");
}

#[test]
fn geometric_mu_outside_unit_interval_is_rejected() {
    // Regression: --geometric-mu 1.5 used to produce a negative mean
    // service time instead of an error.
    for bad in ["0", "1.5", "-0.25"] {
        let (ok, _, stderr) = banyan(&["first-stage", "--p", "0.3", "--geometric-mu", bad]);
        assert!(!ok, "mu={bad} accepted");
        assert!(stderr.contains("--geometric-mu must be in (0, 1]"), "{stderr}");
    }
}

#[test]
fn unstable_load_is_an_error() {
    let (ok, _, stderr) = banyan(&["total", "--p", "0.5", "--m", "4"]);
    assert!(!ok);
    assert!(stderr.contains("unstable"), "{stderr}");
}

#[test]
fn unknown_command_fails_with_usage() {
    let (ok, _, stderr) = banyan(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("usage"));
}

#[test]
fn help_succeeds() {
    let (ok, stdout, _) = banyan(&["help"]);
    assert!(ok);
    assert!(stdout.contains("commands"));
}
